/**
 * @file
 * Command-line front end to the whole framework.
 *
 * Usage:
 *   run_study                                  # all suites, key configs
 *   run_study cint2000                         # one suite, key configs
 *   run_study 164.gzip-like reduc1-dep1-fn2 helix   # one program/config
 *   run_study --file prog.lir reduc1-dep1-fn2 helix # study a .lir file
 *
 * Models: doall | pdoall | helix.  Flags: reduc{0,1}-dep{0..3}-fn{0..3}.
 *
 * Robustness (see docs/robustness.md):
 *   --keep-going / --strict          sweeps default to keep-going: a
 *                                    failing cell is quarantined as a
 *                                    status=failed report and its
 *                                    siblings finish (exit 0).  --strict
 *                                    aborts on the first failure
 *                                    (exit 1).  Single runs are strict.
 *   --budget-instructions N          dynamic-IR-instruction fuel per run
 *   --budget-wall-ms N               wall-clock deadline per run
 *   --budget-heap-bytes N            simulated heap cap per run
 *   --budget-trace-bytes N           event-trace payload cap per recording
 *                                    (or LP_BUDGET_* env; flags win)
 *
 * Performance (see docs/performance.md):
 *   --trace-replay / --no-trace-replay
 *   (or LP_TRACE_REPLAY=on|off)      record-once / replay-many sweeps:
 *                                    interpret each program once, replay
 *                                    its event trace for every other
 *                                    configuration cell.  Default on for
 *                                    sweeps; reports are byte-identical
 *                                    either way.  Single runs always
 *                                    interpret.
 *   --batch-replay / --no-batch
 *   (or LP_BATCH_REPLAY=on|off)      batched replay: when several cells
 *                                    of a program replay the same trace,
 *                                    decode it once and apply every
 *                                    event to all those configuration
 *                                    lanes in one SoA pass.  Default on
 *                                    (needs trace replay, off under
 *                                    --lint); reports are byte-identical
 *                                    either way.
 *   --checkpoint PATH                append one JSONL line per finished
 *                                    sweep cell to PATH
 *   --resume                         reuse cells already in the
 *                                    checkpoint; the final report is
 *                                    byte-identical to an uninterrupted
 *                                    run
 *
 * Static diagnostics (see docs/static_analysis.md):
 *   --lint | --lint=error            lint every module before the sweep
 *   (or LP_LINT=on|error)            (modules with error-level findings
 *                                    are quarantined as skipped/LP_LINT
 *                                    cells, or abort under --strict) and
 *                                    attach the static-vs-dynamic
 *                                    consistency oracle to every cell;
 *                                    "error" promotes warnings.  Oracle
 *                                    mismatches fail the sweep (exit 1).
 *
 * Observability (see docs/observability.md):
 *   --json PATH (or LP_REPORT=PATH)  write the machine-readable run
 *                                    report(s) as JSON
 *   LP_LOG=off|error|warn|info|debug diagnostics level
 *   LP_TRACE=chrome:t.json           Chrome trace (Perfetto-loadable)
 *   LP_TRACE=jsonl:events.jsonl      streaming JSONL events
 *
 * Parallelism (see docs/parallel_execution.md):
 *   --jobs N (or LP_JOBS=N)          sweep with N worker threads
 *                                    (N=0 or "auto": all hardware
 *                                    threads).  Tables and JSON reports
 *                                    are identical to a serial run.
 *   --shards I/N --checkpoint PATH   run shard I of an N-way sweep:
 *                                    this process owns every Nth cell
 *                                    and checkpoints it to
 *                                    PATH.shard<I>of<N>.  Launch one
 *                                    process per shard (any order, any
 *                                    machines sharing the filesystem).
 *   --shards N --merge --checkpoint PATH
 *                                    absorb all N shard checkpoints,
 *                                    run whatever cells no shard
 *                                    finished (crash recovery), and
 *                                    report exactly like an unsharded
 *                                    sweep — the table and --json
 *                                    document are byte-identical.
 *
 * Profiling (see docs/profiling.md):
 *   --profile[=json|chrome[:PATH]]   contention-aware profile of the
 *   (or LP_PROFILE=...)              run: per-site lock-wait telemetry,
 *                                    per-worker utilization and
 *                                    load-imbalance, one record per
 *                                    sweep cell (json also streams
 *                                    PATH.cells.jsonl).  chrome writes a
 *                                    Perfetto-loadable timeline instead.
 *                                    Run reports stay byte-identical
 *                                    with profiling on or off.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/configs.hpp"
#include "core/driver.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"
#include "exec/pool.hpp"
#include "guard/budget.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "lint/engine.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "prof/collector.hpp"
#include "suites/registry.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

using namespace lp;

namespace {

/** --json PATH, or LP_REPORT, or empty. */
std::string g_reportPath;

/**
 * Lint mode (--lint / LP_LINT): 0 = off, 1 = on (gate on error-level
 * findings, attach the consistency oracle), 2 = "error" (additionally
 * promote warnings to errors).
 */
int g_lintMode = 0;

/** Parse a lint-mode spelling; -1 when not understood. */
int
parseLintMode(const std::string &s)
{
    if (s == "on" || s == "1")
        return 1;
    if (s == "error")
        return 2;
    if (s == "off" || s == "0" || s.empty())
        return 0;
    return -1;
}

/**
 * Lint one module under the active mode, print every finding, and bump
 * the lint counters.
 */
lint::LintResult
lintOne(const ir::Module &mod)
{
    lint::LintOptions lo;
    lo.warningsAsErrors = g_lintMode == 2;
    lint::LintResult res = lint::lintModule(mod, lo);
    if (obs::metricsOn()) {
        obs::Registry::instance().counter("lint.modules_linted").add(1);
        obs::Registry::instance()
            .counter("lint.findings")
            .add(res.diags.size());
    }
    for (const lint::Diagnostic &d : res.diags)
        std::cout << "lint: " << d.str() << "\n";
    return res;
}

/** Parse an on/off spelling; -1 when not understood. */
int
parseOnOff(const std::string &s)
{
    if (s == "on" || s == "1" || s == "true")
        return 1;
    if (s == "off" || s == "0" || s == "false")
        return 0;
    return -1;
}

rt::ExecModel
parseModel(const std::string &s)
{
    if (s == "doall")
        return rt::ExecModel::DoAll;
    if (s == "pdoall")
        return rt::ExecModel::PartialDoAll;
    if (s == "helix")
        return rt::ExecModel::Helix;
    fatal("unknown model (want doall|pdoall|helix): " + s);
}

/** Write @p doc to the report path, if one was requested.  Returns the
 * process exit code: a requested report that cannot be written is an
 * error, not a shrug. */
int
maybeWriteReport(const obs::Json &doc)
{
    if (g_reportPath.empty())
        return 0;
    std::ofstream out(g_reportPath, std::ios::trunc);
    if (!out) {
        obs::logMessage(obs::Level::Error,
                        "cannot write report to " + g_reportPath,
                        /*force=*/true);
        return 1;
    }
    out << doc.dump(2) << '\n';
    LP_LOG_INFO("wrote run report to %s", g_reportPath.c_str());
    return 0;
}

int
reportOne(const rt::ProgramReport &rep)
{
    rep.print(std::cout, /*perLoop=*/true);
    return maybeWriteReport(rep.toJson());
}

/**
 * Run one program/config inside a profiler region + cell, so single
 * runs show up in --profile reports and timelines just like sweep
 * cells do (one lane, one span).  A run that throws records as
 * status="failed" before the exception propagates.
 */
template <typename Fn>
rt::ProgramReport
profiledSingleRun(const std::string &program, const std::string &suite,
                  const std::string &config, Fn &&run)
{
    prof::Collector::instance().beginRegion();
    rt::ProgramReport rep;
    {
        prof::CellScope cellProf(program, suite, config);
        cellProf.setAttempts(1);
        rep = run();
        cellProf.setInstructions(rep.serialCost);
        cellProf.setStatus("ok");
    }
    prof::Collector::instance().endRegion();
    return rep;
}

int
runFile(const std::string &path, const std::string &flags,
        const std::string &model)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto mod = ir::parseModule(buf.str(), interp::stdlibImplFor);
    if (g_lintMode != 0) {
        lint::LintResult res = lintOne(*mod);
        if (res.hasErrors()) {
            std::cerr << "error: [LP_LINT] " << path << ": "
                      << res.countAtLeast(lint::Severity::Error)
                      << " error-level lint finding(s)\n";
            return 1;
        }
    }
    core::Loopapalooza lp(*mod);
    rt::LPConfig cfg = rt::LPConfig::parse(flags, parseModel(model));
    return reportOne(profiledSingleRun(path, "file", flags, [&] {
        return g_lintMode != 0 ? lp.runWithOracle(cfg) : lp.run(cfg);
    }));
}

int
runSingle(const std::string &name, const std::string &flags,
          const std::string &model)
{
    for (const auto &prog : suites::allPrograms()) {
        if (prog.name != name)
            continue;
        core::PreparedProgram prepared(prog);
        if (g_lintMode != 0) {
            lint::LintResult res = lintOne(prepared.driver().module());
            if (res.hasErrors()) {
                std::cerr << "error: [LP_LINT] " << name << ": "
                          << res.countAtLeast(lint::Severity::Error)
                          << " error-level lint finding(s)\n";
                return 1;
            }
        }
        rt::LPConfig cfg = rt::LPConfig::parse(flags, parseModel(model));
        return reportOne(profiledSingleRun(name, prog.suite, flags, [&] {
            return g_lintMode != 0 ? prepared.runWithOracle(cfg)
                                   : prepared.run(cfg);
        }));
    }
    std::cerr << "unknown benchmark: " << name << "\n";
    return 1;
}

int
runSuites(const std::string &onlySuite, core::SweepRequest sweep)
{
    sweep.suite = onlySuite;
    sweep.lintMode = g_lintMode;
    sweep.wantJson = !g_reportPath.empty();
    core::SweepResult res = core::runSweep(suites::allPrograms(), sweep);
    int rc = res.exitCode;
    if (res.hasDocument) {
        int wrc = maybeWriteReport(res.document);
        if (rc == 0)
            rc = wrc;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (const char *env = std::getenv("LP_REPORT"))
        g_reportPath = env;
    if (const char *env = std::getenv("LP_LINT")) {
        int mode = parseLintMode(env);
        if (mode < 0)
            obs::logMessage(obs::Level::Error,
                            std::string("LP_LINT value not understood: ") +
                                env + " (want on|error|off); lint stays "
                                      "off",
                            /*force=*/true);
        else
            g_lintMode = mode;
    }

    core::SweepRequest sweep;
    if (const char *env = std::getenv("LP_TRACE_REPLAY")) {
        int v = parseOnOff(env);
        if (v < 0)
            obs::logMessage(obs::Level::Error,
                            std::string("LP_TRACE_REPLAY value not "
                                        "understood: ") +
                                env + " (want on|off); trace replay "
                                      "stays on",
                            /*force=*/true);
        else
            sweep.traceReplay = v == 1;
    }
    if (const char *env = std::getenv("LP_BATCH_REPLAY")) {
        int v = parseOnOff(env);
        if (v < 0)
            obs::logMessage(obs::Level::Error,
                            std::string("LP_BATCH_REPLAY value not "
                                        "understood: ") +
                                env + " (want on|off); batched replay "
                                      "stays on",
                            /*force=*/true);
        else
            sweep.batchReplay = v == 1;
    }
    // LP_PROFILE: same one-time-warning contract as LP_LOG/LP_TRACE/
    // LP_JOBS — an unrecognized value warns once and profiling stays
    // off; the --profile flag (parsed below) wins over the environment.
    if (const char *env = std::getenv("LP_PROFILE")) {
        if (!prof::Collector::instance().configure(env))
            obs::logMessage(obs::Level::Error,
                            std::string("LP_PROFILE value not "
                                        "understood: ") +
                                env +
                                " (want json|chrome[:PATH] or off); "
                                "profiling stays off",
                            /*force=*/true);
    }
    guard::RunBudget budget = guard::defaultBudget();
    bool budgetTouched = false;

    // Extract the option flags anywhere on the command line.
    std::vector<std::string> args;
    try {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            auto value = [&](const char *what) -> std::string {
                if (i + 1 >= argc)
                    fatal(std::string(what) + " requires a value");
                return argv[++i];
            };
            if (a == "--json") {
                g_reportPath = value("--json");
                continue;
            }
            if (a == "--lint" || a.rfind("--lint=", 0) == 0) {
                std::string spec =
                    a == "--lint" ? "on" : a.substr(sizeof("--lint=") - 1);
                int mode = parseLintMode(spec);
                if (mode < 0)
                    fatal("bad --lint value (want on|error|off): " + spec);
                g_lintMode = mode;
                continue;
            }
            if (a == "--keep-going") {
                sweep.keepGoing = true;
                continue;
            }
            if (a == "--strict") {
                sweep.keepGoing = false;
                continue;
            }
            if (a == "--checkpoint") {
                sweep.checkpointPath = value("--checkpoint");
                continue;
            }
            if (a == "--resume") {
                sweep.resume = true;
                continue;
            }
            if (a == "--shards") {
                // "I/N" runs one shard; a plain "N" names the shard
                // count for --merge.
                std::string spec = value("--shards");
                auto bad = [&]() -> unsigned {
                    fatal("bad --shards value (want I/N or N): " + spec);
                };
                auto parseCount = [&](const std::string &s) -> unsigned {
                    char *end = nullptr;
                    unsigned long v = std::strtoul(s.c_str(), &end, 10);
                    if (s.empty() || *end != '\0' || v == 0 || v > 4096)
                        return bad();
                    return static_cast<unsigned>(v);
                };
                std::size_t slash = spec.find('/');
                if (slash == std::string::npos) {
                    sweep.shardIndex = 0;
                    sweep.shardCount = parseCount(spec);
                } else {
                    sweep.shardIndex = parseCount(spec.substr(0, slash));
                    sweep.shardCount =
                        parseCount(spec.substr(slash + 1));
                    if (sweep.shardIndex > sweep.shardCount)
                        fatal("shard index out of range: " + spec);
                }
                continue;
            }
            if (a == "--merge") {
                sweep.merge = true;
                continue;
            }
            if (a == "--budget-instructions") {
                budget.maxInstructions = guard::parseBudgetValue(
                    "--budget-instructions",
                    value("--budget-instructions"));
                budgetTouched = true;
                continue;
            }
            if (a == "--budget-wall-ms") {
                budget.maxWallMs = guard::parseBudgetValue(
                    "--budget-wall-ms", value("--budget-wall-ms"));
                budgetTouched = true;
                continue;
            }
            if (a == "--budget-heap-bytes") {
                budget.maxHeapBytes = guard::parseBudgetValue(
                    "--budget-heap-bytes", value("--budget-heap-bytes"));
                budgetTouched = true;
                continue;
            }
            if (a == "--budget-trace-bytes") {
                budget.maxTraceBytes = guard::parseBudgetValue(
                    "--budget-trace-bytes",
                    value("--budget-trace-bytes"));
                budgetTouched = true;
                continue;
            }
            if (a == "--profile" || a.rfind("--profile=", 0) == 0) {
                std::string spec = a == "--profile"
                                       ? "json"
                                       : a.substr(sizeof("--profile=") -
                                                  1);
                if (!prof::Collector::instance().configure(spec))
                    fatal("bad --profile value (want json|chrome[:PATH] "
                          "or off): " +
                          spec);
                continue;
            }
            if (a == "--trace-replay") {
                sweep.traceReplay = true;
                continue;
            }
            if (a == "--no-trace-replay") {
                sweep.traceReplay = false;
                continue;
            }
            if (a == "--batch-replay") {
                sweep.batchReplay = true;
                continue;
            }
            if (a == "--no-batch") {
                sweep.batchReplay = false;
                continue;
            }
            if (a == "--jobs") {
                std::string spec = value("--jobs");
                unsigned n = 0;
                if (spec != "auto") {
                    try {
                        n = static_cast<unsigned>(std::stoul(spec));
                    } catch (...) {
                        std::cerr << "bad --jobs value (want a count, 0 "
                                     "or 'auto'): "
                                  << spec << "\n";
                        return 1;
                    }
                }
                // Resolve "all hardware threads" here so the override
                // is a concrete count (setJobsOverride(0) clears it).
                exec::setJobsOverride(exec::resolveJobs(n));
                continue;
            }
            args.push_back(std::move(a));
        }

        if (sweep.resume && sweep.checkpointPath.empty())
            fatal("--resume requires --checkpoint PATH");
        if (sweep.merge && sweep.shardCount == 0)
            fatal("--merge requires --shards N");
        if (!sweep.merge && sweep.shardCount != 0 &&
            sweep.shardIndex == 0)
            fatal("--shards N runs nothing by itself: use --shards I/N "
                  "for one shard, or add --merge to combine them");
        if ((sweep.shardIndex != 0 || sweep.merge) &&
            sweep.checkpointPath.empty())
            fatal("--shards requires --checkpoint PATH (the shard "
                  "checkpoints are the merge protocol)");
        if (budgetTouched)
            guard::setBudgetOverride(budget);

        // Write the profile (if one was requested) whatever the verb:
        // even a failing run's contention evidence is evidence.
        auto finishProfile = [](int rc) {
            return prof::Collector::instance().finish() ? rc
                   : rc != 0                            ? rc
                                                        : 1;
        };
        if (args.size() >= 4 && args[0] == "--file")
            return finishProfile(runFile(args[1], args[2], args[3]));
        if (args.size() >= 3)
            return finishProfile(runSingle(args[0], args[1], args[2]));
        if (args.size() == 1)
            return finishProfile(runSuites(args[0], sweep));
        return finishProfile(runSuites("", sweep));
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

/**
 * @file
 * Command-line front end to the whole framework.
 *
 * Usage:
 *   run_study                                  # all suites, key configs
 *   run_study cint2000                         # one suite, key configs
 *   run_study 164.gzip-like reduc1-dep1-fn2 helix   # one program/config
 *   run_study --file prog.lir reduc1-dep1-fn2 helix # study a .lir file
 *
 * Models: doall | pdoall | helix.  Flags: reduc{0,1}-dep{0..3}-fn{0..3}.
 *
 * Observability (see docs/observability.md):
 *   --json PATH (or LP_REPORT=PATH)  write the machine-readable run
 *                                    report(s) as JSON
 *   LP_LOG=off|error|info|debug      diagnostics level
 *   LP_TRACE=chrome:t.json           Chrome trace (Perfetto-loadable)
 *   LP_TRACE=jsonl:events.jsonl      streaming JSONL events
 *
 * Parallelism (see docs/parallel_execution.md):
 *   --jobs N (or LP_JOBS=N)          sweep with N worker threads
 *                                    (N=0 or "auto": all hardware
 *                                    threads).  Tables and JSON reports
 *                                    are identical to a serial run.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/configs.hpp"
#include "core/driver.hpp"
#include "core/study.hpp"
#include "exec/pool.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "suites/registry.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

using namespace lp;

namespace {

/** --json PATH, or LP_REPORT, or empty. */
std::string g_reportPath;

rt::ExecModel
parseModel(const std::string &s)
{
    if (s == "doall")
        return rt::ExecModel::DoAll;
    if (s == "pdoall")
        return rt::ExecModel::PartialDoAll;
    if (s == "helix")
        return rt::ExecModel::Helix;
    fatal("unknown model (want doall|pdoall|helix): " + s);
}

/** Write @p doc to the report path, if one was requested.  Returns the
 * process exit code: a requested report that cannot be written is an
 * error, not a shrug. */
int
maybeWriteReport(const obs::Json &doc)
{
    if (g_reportPath.empty())
        return 0;
    std::ofstream out(g_reportPath, std::ios::trunc);
    if (!out) {
        obs::logMessage(obs::Level::Error,
                        "cannot write report to " + g_reportPath,
                        /*force=*/true);
        return 1;
    }
    out << doc.dump(2) << '\n';
    LP_LOG_INFO("wrote run report to %s", g_reportPath.c_str());
    return 0;
}

int
reportOne(const rt::ProgramReport &rep)
{
    rep.print(std::cout, /*perLoop=*/true);
    return maybeWriteReport(rep.toJson());
}

int
runFile(const std::string &path, const std::string &flags,
        const std::string &model)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto mod = ir::parseModule(buf.str(), interp::stdlibImplFor);
    core::Loopapalooza lp(*mod);
    rt::LPConfig cfg = rt::LPConfig::parse(flags, parseModel(model));
    return reportOne(lp.run(cfg));
}

int
runSingle(const std::string &name, const std::string &flags,
          const std::string &model)
{
    for (const auto &prog : suites::allPrograms()) {
        if (prog.name != name)
            continue;
        core::PreparedProgram prepared(prog);
        rt::LPConfig cfg = rt::LPConfig::parse(flags, parseModel(model));
        return reportOne(prepared.run(cfg));
    }
    std::cerr << "unknown benchmark: " << name << "\n";
    return 1;
}

int
runSuites(const std::string &onlySuite)
{
    std::vector<core::BenchProgram> progs;
    for (const auto &p : suites::allPrograms())
        if (onlySuite.empty() || p.suite == onlySuite)
            progs.push_back(p);
    if (progs.empty()) {
        std::cerr << "no benchmarks match suite '" << onlySuite << "'\n";
        return 1;
    }
    core::Study study(progs);

    obs::Json suitesJson = obs::Json::array();
    obs::Json reportsJson = obs::Json::array();
    const bool wantJson = !g_reportPath.empty();

    // Sweep every (configuration, suite) pair.  The pairs are the unit
    // of parallelism (each one runs its programs serially); results are
    // stored by pair index, so the table and the JSON document come out
    // identical whatever the worker count.
    struct SweepCell
    {
        const core::NamedConfig *config;
        std::string suite;
        std::vector<rt::ProgramReport> reports;
    };
    std::vector<SweepCell> cells;
    for (const core::NamedConfig &named : core::paperConfigs())
        for (const std::string &suite : study.suites())
            cells.push_back({&named, suite, {}});
    exec::parallelFor(cells.size(), [&](std::size_t i) {
        cells[i].reports = study.runSuite(cells[i].suite,
                                          cells[i].config->config,
                                          /*jobs=*/1);
    });

    TextTable t({"configuration", "suite", "geomean speedup",
                 "geomean coverage"});
    for (SweepCell &cell : cells) {
        double speedup = core::Study::geomeanSpeedup(cell.reports);
        double coverage = core::Study::geomeanCoverage(cell.reports);
        t.addRow({cell.config->label, cell.suite,
                  TextTable::num(speedup) + "x",
                  TextTable::num(coverage, 1) + "%"});
        if (wantJson) {
            obs::Json row = obs::Json::object();
            row.set("config", cell.config->label);
            row.set("suite", cell.suite);
            row.set("geomean_speedup", speedup);
            row.set("geomean_coverage_pct", coverage);
            suitesJson.push(std::move(row));
            for (const rt::ProgramReport &rep : cell.reports)
                reportsJson.push(rep.toJson(/*withObsSnapshot=*/false));
        }
    }
    t.print(std::cout);

    if (wantJson) {
        obs::Json doc = obs::Json::object();
        doc.set("suites", std::move(suitesJson));
        doc.set("reports", std::move(reportsJson));
        doc.set("metrics", obs::Registry::instance().toJson());
        doc.set("phases", obs::PhaseTree::instance().toJson());
        return maybeWriteReport(doc);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (const char *env = std::getenv("LP_REPORT"))
        g_reportPath = env;

    // Extract --json PATH / --jobs N anywhere on the command line.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            g_reportPath = argv[++i];
            continue;
        }
        if (std::string(argv[i]) == "--jobs" && i + 1 < argc) {
            std::string spec = argv[++i];
            unsigned n = 0;
            if (spec != "auto") {
                try {
                    n = static_cast<unsigned>(std::stoul(spec));
                } catch (...) {
                    std::cerr << "bad --jobs value (want a count, 0 or "
                                 "'auto'): "
                              << spec << "\n";
                    return 1;
                }
            }
            // Resolve "all hardware threads" here so the override is a
            // concrete count (setJobsOverride(0) would clear it).
            exec::setJobsOverride(exec::resolveJobs(n));
            continue;
        }
        args.push_back(argv[i]);
    }

    try {
        if (args.size() >= 4 && args[0] == "--file")
            return runFile(args[1], args[2], args[3]);
        if (args.size() >= 3)
            return runSingle(args[0], args[1], args[2]);
        if (args.size() == 1)
            return runSuites(args[0]);
        return runSuites("");
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

/**
 * @file
 * Command-line front end to the whole framework.
 *
 * Usage:
 *   run_study                                  # all suites, key configs
 *   run_study cint2000                         # one suite, key configs
 *   run_study 164.gzip-like reduc1-dep1-fn2 helix   # one program/config
 *   run_study --file prog.lir reduc1-dep1-fn2 helix # study a .lir file
 *
 * Models: doall | pdoall | helix.  Flags: reduc{0,1}-dep{0..3}-fn{0..3}.
 */

#include <iostream>

#include <fstream>
#include <sstream>

#include "core/configs.hpp"
#include "core/driver.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "core/study.hpp"
#include "suites/registry.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace lp;

namespace {

rt::ExecModel
parseModel(const std::string &s)
{
    if (s == "doall")
        return rt::ExecModel::DoAll;
    if (s == "pdoall")
        return rt::ExecModel::PartialDoAll;
    if (s == "helix")
        return rt::ExecModel::Helix;
    fatal("unknown model (want doall|pdoall|helix): " + s);
}

int
runFile(const std::string &path, const std::string &flags,
        const std::string &model)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto mod = ir::parseModule(buf.str(), interp::stdlibImplFor);
    core::Loopapalooza lp(*mod);
    rt::LPConfig cfg = rt::LPConfig::parse(flags, parseModel(model));
    rt::ProgramReport rep = lp.run(cfg);
    rep.print(std::cout, /*perLoop=*/true);
    return 0;
}

int
runSingle(const std::string &name, const std::string &flags,
          const std::string &model)
{
    for (const auto &prog : suites::allPrograms()) {
        if (prog.name != name)
            continue;
        core::PreparedProgram prepared(prog);
        rt::LPConfig cfg = rt::LPConfig::parse(flags, parseModel(model));
        rt::ProgramReport rep = prepared.run(cfg);
        rep.print(std::cout, /*perLoop=*/true);
        return 0;
    }
    std::cerr << "unknown benchmark: " << name << "\n";
    return 1;
}

int
runSuites(const std::string &onlySuite)
{
    std::vector<core::BenchProgram> progs;
    for (const auto &p : suites::allPrograms())
        if (onlySuite.empty() || p.suite == onlySuite)
            progs.push_back(p);
    if (progs.empty()) {
        std::cerr << "no benchmarks match suite '" << onlySuite << "'\n";
        return 1;
    }
    core::Study study(progs);

    TextTable t({"configuration", "suite", "geomean speedup",
                 "geomean coverage"});
    for (const core::NamedConfig &named : core::paperConfigs()) {
        for (const std::string &suite : study.suites()) {
            auto reports = study.runSuite(suite, named.config);
            t.addRow({named.label, suite,
                      TextTable::num(core::Study::geomeanSpeedup(reports))
                          + "x",
                      TextTable::num(
                          core::Study::geomeanCoverage(reports), 1) +
                          "%"});
        }
    }
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 5 && std::string(argv[1]) == "--file")
            return runFile(argv[2], argv[3], argv[4]);
        if (argc >= 4)
            return runSingle(argv[1], argv[2], argv[3]);
        if (argc == 2)
            return runSuites(argv[1]);
        return runSuites("");
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

/**
 * @file
 * Quickstart: build a small program in Loopapalooza IR, run the limit
 * study under all three execution models, and read the report.
 *
 * The program is a 1024-element histogram — a loop with *infrequent*
 * dynamic memory conflicts, which is exactly where the three models
 * diverge: DOALL gives up on the first conflict, Partial-DOALL restarts
 * a parallel phase per conflicting iteration, and HELIX synchronizes.
 */

#include <iostream>

#include "core/driver.hpp"
#include "ir/builder.hpp"

using namespace lp;
using namespace lp::ir;

namespace {

std::unique_ptr<Module>
buildHistogram()
{
    auto mod = std::make_unique<Module>("quickstart-histogram");
    IRBuilder b(*mod);
    Global *hist = mod->addGlobal("hist", 512 * 8);

    b.createFunction("main", Type::I64);
    CountedLoop loop(b, b.i64(0), b.i64(1024), b.i64(1), "i");
    {
        // slot = scramble(i) % 512; hist[slot]++.
        Value *key = b.ashr(b.mul(loop.iv(), b.i64(2654435761LL)),
                            b.i64(8));
        Value *slot = b.srem(key, b.i64(512));
        Value *addr = b.elem(hist, slot);
        b.store(b.add(b.load(Type::I64, addr), b.i64(1)), addr);
    }
    loop.finish();
    b.ret(b.load(Type::I64, b.elem(hist, b.i64(0))));
    mod->finalize();
    return mod;
}

} // namespace

int
main()
{
    // 1. Build (or load) a program.
    auto mod = buildHistogram();
    std::cout << "=== the program ===\n";
    mod->print(std::cout);

    // 2. Run the compile-time component once (verification + analyses).
    core::Loopapalooza lp(*mod);

    // 3. Execute under any number of configurations.
    std::cout << "\n=== the limit study ===\n";
    for (rt::ExecModel model : {rt::ExecModel::DoAll,
                                rt::ExecModel::PartialDoAll,
                                rt::ExecModel::Helix}) {
        rt::LPConfig cfg = rt::LPConfig::parse("reduc0-dep0-fn0", model);
        rt::ProgramReport rep = lp.run(cfg);
        rep.print(std::cout, /*perLoop=*/true);
        std::cout << "\n";
    }

    std::cout << "Things to notice: the loop conflicts in a minority of\n"
                 "iterations, so DOALL serializes it, Partial-DOALL keeps\n"
                 "most of the parallelism, and HELIX pays one small delta\n"
                 "per iteration.\n";
    return 0;
}

/**
 * @file
 * Value-prediction explorer: watch the dep2 machinery at work.
 *
 * Builds three loops whose carried values have very different
 * predictability — a constant-stride cursor, a two-phase stride, and an
 * LCG — runs each value stream through every predictor component, and
 * prints per-predictor accuracy alongside the limit-study consequence
 * (the loop's speedup under reduc0-dep2-fn0 PDOALL).
 */

#include <iostream>

#include "core/driver.hpp"
#include "interp/machine.hpp"
#include "ir/builder.hpp"
#include "predict/predictor.hpp"
#include "support/table.hpp"

using namespace lp;
using namespace lp::ir;

namespace {

/** One loop: cursor' = cursor + step(kind); work; out[i] = f(cursor). */
std::unique_ptr<Module>
buildCarriedLoop(int kind)
{
    constexpr std::int64_t kN = 3000;
    auto mod = std::make_unique<Module>("carried-" + std::to_string(kind));
    IRBuilder b(*mod);
    Global *out = mod->addGlobal("out", kN * 8);
    Global *knob = mod->addGlobal("knob", 8); // never written: read-only

    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(kN), b.i64(1), "i");
    Instruction *cur = l.addRecurrence(Type::I64, b.i64(7), "cur");
    Value *next = nullptr;
    switch (kind) {
      case 0: {
        // Constant stride, but data-gated so SCEV cannot see it.
        Value *gate = b.load(Type::I64, b.elem(knob, b.i64(0)));
        Value *step =
            b.select(b.icmpGt(gate, b.i64(1 << 30)), b.i64(9), b.i64(5));
        next = b.add(cur, step, "cur.next");
        break;
      }
      case 1: {
        // Two alternating strides: 2-delta territory.
        Value *odd = b.and_(l.iv(), b.i64(1));
        Value *step = b.select(b.icmpEq(odd, b.i64(0)), b.i64(3),
                               b.i64(11));
        next = b.add(cur, step, "cur.next");
        break;
      }
      default:
        // LCG: unpredictable by construction.
        next = b.add(b.mul(cur, b.i64(6364136223846793005LL)),
                     b.i64(1442695040888963407LL), "cur.next");
        break;
    }
    l.setNext(cur, next);
    // Body work + store keyed by the carried value.
    Value *w = cur;
    for (int r = 0; r < 6; ++r)
        w = b.add(b.mul(w, b.i64(3)), b.i64(r));
    b.store(w, b.elem(out, l.iv()));
    l.finish();
    b.ret(b.load(Type::I64, b.elem(out, b.i64(0))));
    mod->finalize();
    return mod;
}

/** Capture the carried phi's value stream. */
class PhiTap : public interp::ExecListener
{
  public:
    std::vector<std::uint64_t> values;

    void
    onPhiResolved(const ir::Instruction *phi, std::uint64_t bits) override
    {
        if (phi->name() == "cur")
            values.push_back(bits);
    }
};

} // namespace

int
main()
{
    const char *kindName[] = {"constant stride (data-gated)",
                              "alternating stride", "LCG (random)"};

    TextTable t({"carried value", "last-value", "stride", "2-delta",
                 "fcm", "hybrid", "loop speedup @dep2"});

    for (int kind = 0; kind < 3; ++kind) {
        auto mod = buildCarriedLoop(kind);

        // Collect the stream.
        PhiTap tap;
        {
            interp::Machine m(*mod, &tap);
            m.run();
        }

        // Replay it through the predictors.
        predict::HybridPredictor hybrid;
        std::uint64_t total = 0, anyHits = 0;
        std::array<std::uint64_t, 4> hits{};
        for (std::uint64_t v : tap.values) {
            auto out = hybrid.predictAndTrain(v);
            ++total;
            anyHits += out.anyCorrect;
            for (unsigned c = 0; c < 4; ++c)
                hits[c] += out.componentCorrect[c];
        }
        auto pct = [&](std::uint64_t h) {
            return TextTable::num(100.0 * static_cast<double>(h) /
                                      static_cast<double>(total),
                                  1) + "%";
        };

        // And show the limit-study consequence.
        core::Loopapalooza lp(*mod);
        rt::ProgramReport rep = lp.run(rt::LPConfig::parse(
            "reduc0-dep2-fn0", rt::ExecModel::PartialDoAll));
        double loopSpeedup = 1.0;
        for (const auto &lr : rep.loops)
            if (lr.label.find("i.hdr") != std::string::npos)
                loopSpeedup = lr.speedup();

        t.addRow({kindName[kind], pct(hits[0]), pct(hits[1]),
                  pct(hits[2]), pct(hits[3]), pct(anyHits),
                  TextTable::num(loopSpeedup) + "x"});
    }
    t.print(std::cout);

    std::cout << "\nThe dep2 flag turns prediction accuracy directly into\n"
                 "parallelism: a correctly predicted carried value is not\n"
                 "a dependency that iteration (paper Section II-A).\n";
    return 0;
}

/**
 * @file
 * Authoring a custom benchmark kernel and sweeping the paper's full
 * configuration space over it.
 *
 * The kernel is a small "transaction log" processor with one of each
 * dependence class from paper Table I:
 *   - a computable IV (the loop counter),
 *   - a reduction (total of processed amounts)            -> reduc flag
 *   - a stride-predictable carried sequence number        -> dep2
 *   - an account table with occasional repeated accounts  -> memory LCDs
 *   - a pure validation helper called per record          -> fn flags
 *
 * Watching which flag unlocks which part of the speedup is the fastest
 * way to build intuition for the framework.
 */

#include <iostream>

#include "core/configs.hpp"
#include "core/driver.hpp"
#include "ir/builder.hpp"
#include "support/table.hpp"

using namespace lp;
using namespace lp::ir;

namespace {

std::unique_ptr<Module>
buildLedger()
{
    constexpr std::int64_t kRecords = 4000, kAccounts = 1024;
    auto mod = std::make_unique<Module>("ledger");
    IRBuilder b(*mod);
    Global *amounts = mod->addGlobal("amounts", kRecords * 8);
    Global *balance = mod->addGlobal("balance", kAccounts * 8);

    // Pure validator: range-checks an amount.
    Function *validate =
        b.createFunction("validate", Type::I64, {{Type::I64, "x"}});
    {
        Value *x = validate->args()[0].get();
        Value *clamped = b.select(b.icmpGt(x, b.i64(1000)), b.i64(1000),
                                  x);
        b.ret(b.select(b.icmpLt(clamped, b.i64(-1000)), b.i64(-1000),
                       clamped));
    }

    b.createFunction("main", Type::I64);
    {
        // Parallel input generation.
        CountedLoop init(b, b.i64(0), b.i64(kRecords), b.i64(1), "init");
        Value *v = b.srem(b.mul(init.iv(), b.i64(40503)), b.i64(1777));
        b.store(v, b.elem(amounts, init.iv()));
        init.finish();
    }

    CountedLoop rec(b, b.i64(0), b.i64(kRecords), b.i64(1), "rec");
    // Reduction: the grand total.
    Instruction *total = rec.addRecurrence(Type::I64, b.i64(0), "total");
    // Predictable register LCD: sequence numbers ascend by 3.
    Instruction *seq = rec.addRecurrence(Type::I64, b.i64(100), "seq");
    {
        Value *amount = b.load(Type::I64, b.elem(amounts, rec.iv()));
        Value *ok = b.call(validate, {amount});
        // Account id repeats occasionally -> infrequent memory LCDs.
        Value *account = b.srem(b.mul(rec.iv(), b.i64(2654435761LL)),
                                b.i64(1024));
        Value *slot = b.elem(balance, account);
        b.store(b.add(b.load(Type::I64, slot), ok), slot);

        Value *totalNext = b.add(total, ok, "total.next");
        rec.setNext(total, totalNext);
        // The step depends on the data (so SCEV cannot compute the
        // sequence number), but in practice it is always 3 — a textbook
        // stride-predictable LCD for the dep2 predictor.
        Value *step = b.select(b.icmpGt(ok, b.i64(100000)), b.i64(5),
                               b.i64(3));
        Value *seqNext = b.add(seq, step, "seq.next");
        rec.setNext(seq, seqNext);
        // seq is consumed by the record tag (so it is a real LCD).
        b.store(b.xor_(ok, seq), b.elem(amounts, rec.iv()));
    }
    rec.finish();
    b.ret(total);
    mod->finalize();
    return mod;
}

} // namespace

int
main()
{
    auto mod = buildLedger();
    core::Loopapalooza lp(*mod);

    TextTable t({"configuration", "speedup", "coverage"});
    for (const core::NamedConfig &named : core::paperConfigs()) {
        rt::ProgramReport rep = lp.run(named.config);
        t.addRow({named.label,
                  TextTable::num(rep.speedup()) + "x",
                  TextTable::num(rep.coverage * 100, 1) + "%"});
    }
    t.print(std::cout);

    std::cout <<
        "\nReading guide: the fn0 rows stay serial (validate() call);\n"
        "fn1+ admits the pure call; the record loop still needs reduc1\n"
        "(total) and dep2 (seq); the occasional balance collisions are\n"
        "why DOALL never parallelizes it while PDOALL and HELIX do.\n";
    return 0;
}

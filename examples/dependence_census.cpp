/**
 * @file
 * Per-loop dependence explorer for the bundled benchmark suites.
 *
 * Usage:
 *   dependence_census                 # list all registered benchmarks
 *   dependence_census 164.gzip-like   # full per-loop dependence report
 *
 * For the chosen benchmark this prints, per static loop, the compile-time
 * classification (computable IVs, reductions, tracked register LCDs,
 * statically filtered accesses, call sites) and the measured dynamic
 * behaviour (iterations, conflicts, prediction accuracy) under a
 * maximally-observant configuration.
 */

#include <iostream>

#include "core/driver.hpp"
#include "core/study.hpp"
#include "suites/registry.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

using namespace lp;

namespace {

int
listBenchmarks()
{
    std::cout << "registered benchmarks:\n";
    for (const auto &prog : suites::allPrograms())
        std::cout << "  " << prog.suite << "  " << prog.name << "\n";
    std::cout << "\nrun `dependence_census <name>` for a per-loop report\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return listBenchmarks();
    const std::string wanted = argv[1];

    const core::BenchProgram *found = nullptr;
    for (const auto &prog : suites::allPrograms())
        if (prog.name == wanted)
            found = &prog;
    if (!found) {
        std::cerr << "unknown benchmark: " << wanted << "\n";
        listBenchmarks();
        return 1;
    }

    auto mod = found->build();
    core::Loopapalooza lp(*mod);

    // Static, compile-time view.
    std::cout << "=== compile-time classification: " << wanted << " ===\n";
    TextTable staticTable({"loop", "depth", "canonical", "IV/MIV",
                           "reductions", "tracked reg LCDs",
                           "filtered accesses", "call sites"});
    for (const auto &fp : lp.plan().functionPlans()) {
        for (const rt::LoopPlan &lplan : fp->loopPlans) {
            if (!lplan.loop)
                continue;
            staticTable.addRow(
                {lplan.loop->label(),
                 std::to_string(lplan.loop->depth()),
                 lplan.loop->isCanonical() ? "yes" : "NO",
                 std::to_string(lplan.computablePhis.size()),
                 std::to_string(lplan.reductions.size()),
                 std::to_string(lplan.nonComputable.size()),
                 std::to_string(lplan.untrackedMem.size()),
                 std::to_string(lplan.callSites.size())});
        }
    }
    staticTable.print(std::cout);

    // Dynamic view under the most observant configuration.
    rt::LPConfig cfg = rt::LPConfig::parse("reduc0-dep2-fn3",
                                           rt::ExecModel::PartialDoAll);
    rt::ProgramReport rep = lp.run(cfg);
    std::cout << "\n=== dynamic behaviour [" << cfg.str() << "] ===\n";
    rep.print(std::cout, /*perLoop=*/true);

    std::cout << strf(
        "\ncensus: %llu predictable vs %llu unpredictable register LCDs, "
        "%llu frequent vs %llu infrequent memory-LCD loops\n",
        static_cast<unsigned long long>(rep.census.predictableRegLcds),
        static_cast<unsigned long long>(rep.census.unpredictableRegLcds),
        static_cast<unsigned long long>(rep.census.frequentMemLcdLoops),
        static_cast<unsigned long long>(rep.census.infrequentMemLcdLoops));
    return 0;
}

/**
 * @file
 * Random-program generator for property-based testing.
 *
 * Generates structurally valid, always-terminating IR programs with a
 * random mix of the dependence classes from paper Table I: computable
 * IVs, reductions, unpredictable carried values, affine and scrambled
 * memory accesses, shared-cell read-modify-writes and pure helper calls.
 * Every program verifies, every run terminates, and the whole pipeline's
 * invariants can be checked against them en masse.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "ir/module.hpp"

namespace lp::test {

/** Build a random program from @p seed (same seed => same program). */
std::unique_ptr<ir::Module> generateRandomProgram(std::uint64_t seed);

} // namespace lp::test

/**
 * @file
 * Random-program generator for property-based testing — now a thin
 * delegate to the promoted lp::fuzz generator (src/fuzz/generator.hpp)
 * so the property tests and the differential fuzz harness draw from
 * one program distribution.  lp::fuzz's determinism contract keeps
 * every seed producing the byte-identical program this header always
 * produced.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "fuzz/generator.hpp"

namespace lp::test {

/** Build a random program from @p seed (same seed => same program). */
inline std::unique_ptr<ir::Module>
generateRandomProgram(std::uint64_t seed)
{
    return fuzz::generateProgram(seed);
}

} // namespace lp::test

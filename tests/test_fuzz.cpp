/**
 * @file
 * The lp::fuzz torture harness, tested on itself:
 *
 *  - generator: determinism, delegate compatibility, the dependence-
 *    class mix knob, option validation;
 *  - mutation: deterministic draws, the corruption oracle finds zero
 *    divergences on clean seeds (every mutated trace is rejected with
 *    a categorized LP_* error or is a byte-identical no-op);
 *  - differential: the five oracle pairs are clean on sample seeds,
 *    failures carry the one-command repro line;
 *  - minimizer: shrinks to the predicate's minimal option set and
 *    respects its evaluation budget;
 *  - corpus: entries re-parse, sidecars carry the repro line, and
 *    every checked-in tests/fuzz_corpus entry re-runs clean
 *    (the regression tier of the corpus workflow);
 *  - runSweep trace fallback: a truncated recording or an injected
 *    replay fault degrades cells to interpreting with a byte-identical
 *    document and bumps sweep.trace_fallbacks.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutate.hpp"
#include "generator.hpp"
#include "guard/budget.hpp"
#include "guard/checkpoint.hpp"
#include "guard/fault.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

namespace fs = std::filesystem;

std::string
printed(const ir::Module &m)
{
    std::ostringstream os;
    m.print(os);
    return os.str();
}

class FuzzTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        guard::clearBudgetOverride();
        guard::setFault("", 0);
    }
    void TearDown() override
    {
        guard::clearBudgetOverride();
        guard::setFault("", 0);
        obs::setMetricsEnabled(false);
    }
};

// ---------------------------------------------------------------- generator

TEST_F(FuzzTest, GeneratorIsDeterministic)
{
    for (std::uint64_t seed : {0ULL, 7ULL, 123ULL}) {
        auto a = fuzz::generateProgram(seed);
        auto b = fuzz::generateProgram(seed);
        EXPECT_EQ(printed(*a), printed(*b)) << "seed " << seed;
    }
    EXPECT_NE(printed(*fuzz::generateProgram(1)),
              printed(*fuzz::generateProgram(2)));
}

TEST_F(FuzzTest, TestDelegateMatchesFuzzGenerator)
{
    // tests/generator.hpp is now a delegate; the property suite's
    // programs must be the library's, draw for draw.
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        EXPECT_EQ(printed(*test::generateRandomProgram(seed)),
                  printed(*fuzz::generateProgram(seed)));
}

TEST_F(FuzzTest, MixKnobControlsDependenceClasses)
{
    // Zero every store-producing class: the printed program's main()
    // has no stores (the helper has none either).
    fuzz::GenOptions loadsOnly;
    loadsOnly.opWeights = {1, 1, 0, 0, 1, 0};
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        std::string text = printed(*fuzz::generateProgram(seed, loadsOnly));
        EXPECT_EQ(text.find("store"), std::string::npos) << "seed " << seed;
    }

    // Stores only: every generated body stores somewhere.
    fuzz::GenOptions storesOnly;
    storesOnly.opWeights = {0, 0, 1, 1, 0, 0};
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        std::string text =
            printed(*fuzz::generateProgram(seed, storesOnly));
        EXPECT_NE(text.find("store"), std::string::npos) << "seed " << seed;
    }

    // May-alias pairs only: every body stores through a loaded index,
    // so main() has both loads and stores and lints with the may-LCD
    // store note (the class exists to exercise exactly that PDG path).
    fuzz::GenOptions mayAliasOnly;
    mayAliasOnly.opWeights = {0, 0, 0, 0, 0, 0, 1};
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        std::string text =
            printed(*fuzz::generateProgram(seed, mayAliasOnly));
        EXPECT_NE(text.find("store"), std::string::npos) << "seed " << seed;
        EXPECT_NE(text.find("load"), std::string::npos) << "seed " << seed;
    }

    // No carried recurrences when only kind 0 ("none") has weight.
    fuzz::GenOptions noCarried;
    noCarried.carriedWeights = {1, 0, 0, 0};
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        std::string text = printed(*fuzz::generateProgram(seed, noCarried));
        EXPECT_EQ(text.find("c.next"), std::string::npos)
            << "seed " << seed;
    }
}

TEST_F(FuzzTest, InvalidOptionsThrowInternal)
{
    fuzz::GenOptions allZero;
    allZero.opWeights = {0, 0, 0, 0, 0, 0};
    EXPECT_THROW(fuzz::generateProgram(1, allZero), InternalError);

    fuzz::GenOptions emptyRange;
    emptyRange.minOps = 5;
    emptyRange.maxOps = 4;
    EXPECT_THROW(fuzz::generateProgram(1, emptyRange), InternalError);
}

// ----------------------------------------------------------------- mutation

TEST_F(FuzzTest, MutationDrawsAreDeterministic)
{
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        fuzz::Mutation a = fuzz::drawMutation(seed, 1000);
        fuzz::Mutation b = fuzz::drawMutation(seed, 1000);
        EXPECT_EQ(a.describe(), b.describe());
    }
}

TEST_F(FuzzTest, CorruptionOracleCleanOnSampleSeeds)
{
    for (std::uint64_t seed : {0ULL, 5ULL, 9ULL}) {
        std::vector<fuzz::DiffFailure> fails =
            fuzz::runCorruption(seed, 48);
        for (const fuzz::DiffFailure &f : fails)
            ADD_FAILURE() << f.oracle << ": " << f.detail << " ("
                          << f.reproLine << ")";
    }
}

// ------------------------------------------------------------- differential

TEST_F(FuzzTest, DifferentialPairsCleanOnSampleSeeds)
{
    fuzz::DiffOptions opts;
    opts.jobsN = 3;
    opts.shards = 2;
    opts.scratchDir = ::testing::TempDir() + "lp_fuzz_test_scratch";
    for (std::uint64_t seed : {1ULL, 4ULL}) {
        std::vector<fuzz::DiffFailure> fails =
            fuzz::runDifferential(seed, opts);
        for (const fuzz::DiffFailure &f : fails)
            ADD_FAILURE() << "seed " << seed << " " << f.oracle << ": "
                          << f.detail;
    }
}

TEST_F(FuzzTest, DifferentialSurvivesTransientReplayFaultSchedule)
{
    // A fault schedule on a transient site must not break byte-
    // identity: the replay fallback / retry heals every armed run.
    fuzz::DiffOptions opts;
    opts.jobsN = 2;
    opts.shards = 2;
    opts.scratchDir = ::testing::TempDir() + "lp_fuzz_test_scratch";
    opts.faultSite = "replay";
    opts.faultNth = 2;
    std::vector<fuzz::DiffFailure> fails =
        fuzz::runDifferential(2, opts);
    for (const fuzz::DiffFailure &f : fails)
        ADD_FAILURE() << f.oracle << ": " << f.detail;
}

TEST_F(FuzzTest, FailureReportsCarryReproLine)
{
    EXPECT_EQ(fuzz::reproLineFor(42), "lp_fuzz --seed=42 --minimize");
    // An impossible generator range makes runDifferential fail at the
    // generate step; the failure must carry the repro line.
    fuzz::DiffOptions opts;
    opts.gen.minOps = 9;
    opts.gen.maxOps = 3;
    std::vector<fuzz::DiffFailure> fails =
        fuzz::runDifferential(13, opts);
    ASSERT_FALSE(fails.empty());
    EXPECT_EQ(fails[0].oracle, "generate");
    EXPECT_EQ(fails[0].reproLine, "lp_fuzz --seed=13 --minimize");
}

// ---------------------------------------------------------------- minimizer

TEST_F(FuzzTest, MinimizerShrinksToPredicateMinimum)
{
    // Synthetic failure: present iff the RMW class is in the mix and
    // trips can reach 10.  The minimizer must strip everything else.
    auto stillFails = [](const fuzz::GenOptions &g) {
        return g.opWeights[5] != 0 && g.maxTrip >= 10;
    };
    fuzz::MinimizeResult m =
        fuzz::minimizeOptions(fuzz::GenOptions{}, stillFails, 200);
    EXPECT_NE(m.options.opWeights[5], 0u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(m.options.opWeights[i], 0u) << "class " << i;
    EXPECT_EQ(m.options.maxPhases, 1u);
    EXPECT_EQ(m.options.maxOps, 1u);
    EXPECT_EQ(m.options.maxDepth, 1u);
    EXPECT_EQ(m.options.nestProb, 0.0);
    // Trip range cannot shrink below the failure threshold.
    EXPECT_GE(m.options.maxTrip, 10u);
    unsigned carried = 0;
    for (unsigned w : m.options.carriedWeights)
        carried += w != 0;
    EXPECT_EQ(carried, 1u);
}

TEST_F(FuzzTest, MinimizerRespectsEvalBudget)
{
    unsigned calls = 0;
    auto stillFails = [&](const fuzz::GenOptions &) {
        ++calls;
        return true;
    };
    fuzz::MinimizeResult m =
        fuzz::minimizeOptions(fuzz::GenOptions{}, stillFails, 7);
    EXPECT_LE(m.evals, 7u);
    EXPECT_EQ(calls, m.evals);
}

// ------------------------------------------------------------------- corpus

TEST_F(FuzzTest, CorpusEntryRoundTrips)
{
    std::string dir = ::testing::TempDir() + "lp_fuzz_test_corpus";
    fs::remove_all(dir);
    fuzz::GenOptions small;
    small.maxPhases = small.minPhases = 1;
    std::string lir = fuzz::writeCorpusEntry(
        dir, "sample", 3, small, "interp-vs-replay", "synthetic entry");
    ASSERT_TRUE(fs::exists(lir));

    // The .lir re-parses to the byte-identical module.
    std::ifstream in(lir);
    std::stringstream text;
    text << in.rdbuf();
    auto reparsed = ir::parseModule(text.str(), interp::stdlibImplFor);
    EXPECT_EQ(printed(*reparsed),
              printed(*fuzz::generateProgram(3, small)));

    // The sidecar names the seed and the one-command repro.
    std::ifstream repro(fs::path(dir) / "sample.repro");
    std::stringstream rtext;
    rtext << repro.rdbuf();
    EXPECT_NE(rtext.str().find("seed=3"), std::string::npos);
    EXPECT_NE(rtext.str().find("repro=lp_fuzz --seed=3 --minimize"),
              std::string::npos);
    fs::remove_all(dir);
}

TEST_F(FuzzTest, CheckedInCorpusRegressionsStayClean)
{
    // The regression tier of the corpus workflow: every .repro landed
    // under tests/fuzz_corpus re-runs its seed through the corruption
    // oracle and the differential pairs, and must stay clean.
    fs::path corpus = fs::path(LP_SOURCE_DIR) / "tests" / "fuzz_corpus";
    ASSERT_TRUE(fs::exists(corpus));
    unsigned entries = 0;
    for (const auto &e : fs::directory_iterator(corpus)) {
        if (e.path().extension() != ".repro")
            continue;
        ++entries;
        fuzz::DiffOptions opts;
        opts.jobsN = 2;
        opts.shards = 2;
        opts.scratchDir = ::testing::TempDir() + "lp_fuzz_test_scratch";
        std::ifstream in(e.path());
        std::string line;
        std::uint64_t seed = 0;
        bool haveSeed = false;
        while (std::getline(in, line)) {
            if (line.rfind("seed=", 0) == 0) {
                seed = std::stoull(line.substr(5));
                haveSeed = true;
            }
            // Replay the entry under its pinned op mix ("name:w" list,
            // index-aligned with GenOptions::opWeights) so entries
            // exercising an off-by-default class — e.g. may_alias_pair
            // — regenerate the same program shape they pinned.
            if (line.rfind("opWeights=[", 0) == 0) {
                std::string list = line.substr(
                    sizeof("opWeights=[") - 1,
                    line.size() - sizeof("opWeights=["));
                std::size_t idx = 0, pos = 0;
                while (pos < list.size() &&
                       idx < opts.gen.opWeights.size()) {
                    std::size_t colon = list.find(':', pos);
                    std::size_t comma = list.find(',', pos);
                    if (colon == std::string::npos)
                        break;
                    opts.gen.opWeights[idx++] = static_cast<unsigned>(
                        std::stoul(list.substr(colon + 1)));
                    if (comma == std::string::npos)
                        break;
                    pos = comma + 1;
                }
                // Older sidecars list fewer classes: the rest stay at
                // the (compatible) defaults of 0-weight extensions.
                while (idx < opts.gen.opWeights.size())
                    opts.gen.opWeights[idx++] = 0;
            }
        }
        ASSERT_TRUE(haveSeed) << e.path();
        for (const fuzz::DiffFailure &f :
             fuzz::runDifferential(seed, opts))
            ADD_FAILURE() << e.path().filename() << ": " << f.oracle
                          << ": " << f.detail;
        for (const fuzz::DiffFailure &f :
             fuzz::runCorruption(seed, 16, opts.gen))
            ADD_FAILURE() << e.path().filename() << ": " << f.oracle
                          << ": " << f.detail;
        // And the checked-in .lir still parses.
        fs::path lir = e.path();
        lir.replace_extension(".lir");
        ASSERT_TRUE(fs::exists(lir)) << "corpus entry missing its .lir";
        std::ifstream lin(lir);
        std::stringstream text;
        text << lin.rdbuf();
        EXPECT_NO_THROW(
            ir::parseModule(text.str(), interp::stdlibImplFor));
    }
    EXPECT_GE(entries, 1u) << "fuzz corpus should not be empty";
}

// ------------------------------------------------- runSweep trace fallback

std::vector<core::BenchProgram>
fallbackPrograms(std::uint64_t seed)
{
    core::BenchProgram p;
    p.name = fuzz::programName(seed);
    p.suite = "fuzz";
    p.seed = seed;
    p.build = [seed] { return fuzz::generateProgram(seed); };
    return {p};
}

std::string
sweepDump(const std::vector<core::BenchProgram> &progs, bool traceReplay)
{
    core::SweepRequest req;
    req.suite = "fuzz";
    req.traceReplay = traceReplay;
    req.wantJson = true;
    core::SweepResult res = core::runSweep(progs, req);
    EXPECT_EQ(res.exitCode, 0);
    return res.document.dump(2);
}

TEST_F(FuzzTest, TruncatedTraceFallsBackToInterpretByteIdentically)
{
    auto progs = fallbackPrograms(6);
    const std::string reference = sweepDump(progs, /*traceReplay=*/false);

    // A 64-byte trace budget truncates every recording, so every
    // replay cell must degrade to interpreting — with the document
    // byte-identical to the interpret-only sweep.
    guard::RunBudget b = guard::defaultBudget();
    b.maxTraceBytes = 64;
    guard::setBudgetOverride(b);
    obs::setMetricsEnabled(true);
    obs::Registry::instance().resetAll();
    const std::string degraded = sweepDump(progs, /*traceReplay=*/true);
    std::uint64_t fallbacks = obs::Registry::instance()
                                  .counter("sweep.trace_fallbacks")
                                  .value();
    obs::setMetricsEnabled(false);
    guard::clearBudgetOverride();

    // Metrics-on adds the metrics/phases sections to the document, so
    // compare the reports array only: re-run with metrics off.
    EXPECT_GT(fallbacks, 0u);
    const std::string degradedQuiet = sweepDump(progs, true);
    EXPECT_EQ(reference, degradedQuiet);
}

TEST_F(FuzzTest, InjectedReplayFaultFallsBackByteIdentically)
{
    auto progs = fallbackPrograms(8);
    const std::string reference = sweepDump(progs, false);
    guard::setFault("replay", 1);
    const std::string healed = sweepDump(progs, true);
    guard::setFault("", 0);
    EXPECT_EQ(reference, healed);
}

TEST_F(FuzzTest, SeedIsThreadedIntoReportsAndCellKeys)
{
    EXPECT_EQ(guard::Checkpoint::cellKey("cfg", "fuzz", "random-9", 9),
              "cfg|fuzz|random-9|9");
    auto progs = fallbackPrograms(9);
    const std::string dump = sweepDump(progs, true);
    EXPECT_NE(dump.find("\"seed\": 9"), std::string::npos);
    // Hand-written programs (seed 0) keep their historical reports:
    // no seed key at all.
    core::BenchProgram plain;
    plain.name = "plain";
    plain.suite = "fuzz";
    plain.build = [] { return fuzz::generateProgram(0); };
    core::SweepRequest req;
    req.suite = "fuzz";
    req.wantJson = true;
    core::SweepResult res = core::runSweep({plain}, req);
    EXPECT_EQ(res.document.dump().find("\"seed\""), std::string::npos);
}

// ---------------------------------------------------------------- harness

TEST_F(FuzzTest, HarnessRunsARangeAndReportsCleanly)
{
    fuzz::HarnessOptions opts;
    opts.seedBegin = 0;
    opts.seedEnd = 2;
    opts.mutationsPerSeed = 4;
    opts.diff.jobsN = 2;
    opts.diff.shards = 2;
    opts.diff.scratchDir = ::testing::TempDir() + "lp_fuzz_test_scratch";
    std::ostringstream log;
    fuzz::HarnessResult res = fuzz::runHarness(opts, &log);
    EXPECT_EQ(res.seedsRun, 2u);
    EXPECT_TRUE(res.ok()) << log.str();
}

} // namespace
} // namespace lp

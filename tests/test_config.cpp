/**
 * @file
 * Unit tests for configuration parsing/validation and the canonical
 * paper configuration list.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/configs.hpp"
#include "rt/config.hpp"
#include "rt/plan.hpp"
#include "support/error.hpp"

namespace lp::rt {
namespace {

TEST(Config, ParseRoundTrip)
{
    for (int r = 0; r <= 1; ++r) {
        for (int d = 0; d <= 3; ++d) {
            for (int f = 0; f <= 3; ++f) {
                for (ExecModel m :
                     {ExecModel::PartialDoAll, ExecModel::Helix}) {
                    char buf[64];
                    std::snprintf(buf, sizeof(buf),
                                  "reduc%d-dep%d-fn%d", r, d, f);
                    LPConfig cfg = LPConfig::parse(buf, m);
                    EXPECT_EQ(cfg.reduc, r);
                    EXPECT_EQ(cfg.dep, d);
                    EXPECT_EQ(cfg.fn, f);
                    EXPECT_EQ(cfg.model, m);
                    EXPECT_EQ(cfg.str().find(buf), 0u);
                }
            }
        }
    }
}

TEST(Config, DoallRejectsDepFlags)
{
    EXPECT_NO_THROW(LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll));
    EXPECT_NO_THROW(LPConfig::parse("reduc1-dep0-fn2", ExecModel::DoAll));
    for (int d = 1; d <= 3; ++d) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "reduc0-dep%d-fn0", d);
        EXPECT_THROW(LPConfig::parse(buf, ExecModel::DoAll), FatalError)
            << buf;
    }
}

TEST(Config, MalformedStringsRejected)
{
    EXPECT_THROW(LPConfig::parse("", ExecModel::Helix), FatalError);
    EXPECT_THROW(LPConfig::parse("nonsense", ExecModel::Helix),
                 FatalError);
    EXPECT_THROW(LPConfig::parse("reduc9-dep0-fn0", ExecModel::Helix),
                 FatalError);
    EXPECT_THROW(LPConfig::parse("reduc0-dep7-fn0", ExecModel::Helix),
                 FatalError);
    EXPECT_THROW(LPConfig::parse("reduc0-dep0-fn9", ExecModel::Helix),
                 FatalError);
}

TEST(Config, ThresholdValidation)
{
    LPConfig cfg = LPConfig::parse("reduc0-dep0-fn0",
                                   ExecModel::PartialDoAll);
    cfg.pdoallSerialThreshold = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.pdoallSerialThreshold = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.pdoallSerialThreshold = 0.8;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, ModelNames)
{
    EXPECT_STREQ(execModelName(ExecModel::DoAll), "DOALL");
    EXPECT_STREQ(execModelName(ExecModel::PartialDoAll), "PDOALL");
    EXPECT_STREQ(execModelName(ExecModel::Helix), "HELIX");
}

TEST(Config, PaperConfigListMatchesFigureRows)
{
    const auto &configs = core::paperConfigs();
    ASSERT_EQ(configs.size(), 14u);
    // Bottom of the figure: DOALL rows.
    EXPECT_EQ(configs[0].label, "reduc0-dep0-fn0 DOALL");
    EXPECT_EQ(configs[1].label, "reduc1-dep0-fn0 DOALL");
    // Top of the figure: the headline HELIX row.
    EXPECT_EQ(configs[13].label, "reduc1-dep1-fn2 HELIX");
    // All labels unique and all configurations valid.
    std::set<std::string> labels;
    for (const auto &named : configs) {
        EXPECT_NO_THROW(named.config.validate());
        EXPECT_TRUE(labels.insert(named.label).second) << named.label;
    }
}

TEST(Config, BestConfigsMatchPaper)
{
    EXPECT_EQ(core::bestPdoall().str(), "reduc1-dep2-fn2 PDOALL");
    EXPECT_EQ(core::bestHelix().str(), "reduc1-dep1-fn2 HELIX");
    ASSERT_EQ(core::coverageConfigs().size(), 3u);
}

TEST(Config, SerialReasonNames)
{
    EXPECT_STREQ(serialReasonName(SerialReason::None), "parallel");
    EXPECT_STREQ(serialReasonName(SerialReason::RegisterLcd),
                 "register-lcd");
    EXPECT_STREQ(serialReasonName(SerialReason::CallPolicy),
                 "call-policy");
    EXPECT_STREQ(serialReasonName(SerialReason::NonCanonical),
                 "non-canonical");
}

} // namespace
} // namespace lp::rt

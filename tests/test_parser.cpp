/**
 * @file
 * Tests for the textual IR parser: hand-written programs, error cases,
 * and the round-trip property parse(print(M)) == M (checked by
 * re-printing) over the bundled kernels and random programs.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "generator.hpp"
#include "helpers.hpp"
#include "interp/machine.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "suites/registry.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using namespace ir;

std::string
printed(const Module &mod)
{
    std::ostringstream os;
    mod.print(os);
    return os.str();
}

TEST(Parser, HandWrittenModule)
{
    const char *text = R"(module demo
global @data [64 bytes]

func i64 @main() {
  entry:
    jmp label hdr
  hdr:
    %i = phi i64 [0, entry], [%i.next, latch]
    %cond = icmp.lt i64 %i, 8
    br %cond, label body, label exit
  body:
    %off = mul i64 %i, 8
    %p = ptradd ptr @data, %off
    store %i, %p
    jmp label latch
  latch:
    %i.next = add i64 %i, 1
    jmp label hdr
  exit:
    %last = load i64 @data
    ret %last
}
)";
    auto mod = parseModule(text);
    VerifyResult r = verifyModule(*mod);
    ASSERT_TRUE(r.ok()) << r.message();
    interp::Machine m(*mod);
    EXPECT_EQ(m.run(), 0u); // data[0] == 0
    EXPECT_EQ(mod->name(), "demo");
    EXPECT_EQ(mod->globals().size(), 1u);
}

TEST(Parser, FloatAndPointerLiterals)
{
    const char *text = R"(module lits
func i64 @main() {
  entry:
    %x = fadd f64 1.5, 2.5
    %i = ftoi f64 %x
    %isnull = icmp.eq ptr null, null
    %r = add i64 %i, %isnull
    ret %r
}
)";
    auto mod = parseModule(text);
    interp::Machine m(*mod);
    EXPECT_EQ(m.run(), 5u); // 4 + 1
}

TEST(Parser, ExternWithStdlibResolver)
{
    const char *text = R"(module ext
extern f64 @!sqrt #pure cost=20

func i64 @main() {
  entry:
    %x = callext f64 @!sqrt 256.0
    %r = ftoi f64 %x
    ret %r
}
)";
    auto mod = parseModule(text, interp::stdlibImplFor);
    interp::Machine m(*mod);
    EXPECT_EQ(m.run(), 16u);
}

TEST(Parser, UnknownExternGetsZeroStub)
{
    const char *text = R"(module ext
extern i64 @!mystery #threadsafe cost=5

func i64 @main() {
  entry:
    %x = callext i64 @!mystery
    ret %x
}
)";
    auto mod = parseModule(text);
    interp::Machine m(*mod);
    EXPECT_EQ(m.run(), 0u);
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    try {
        parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                    "    %x = frobnicate i64 1, 2\n    ret %x\n}\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 4"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("frobnicate"),
                  std::string::npos);
    }
}

// Malformed input must surface as *categorized* errors (lp::Error with
// a stable code) so keep-going sweeps can quarantine by category —
// never as a crash, never as an uncategorized abort.

TEST(Parser, TruncatedModuleIsCategorizedParseError)
{
    // A function body cut off mid-block, as from a truncated download.
    try {
        parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                    "    %x = add i64 1, 2\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Parse);
        std::string msg = e.what();
        EXPECT_NE(msg.find("[LP_PARSE]"), std::string::npos) << msg;
    }
}

TEST(Parser, SyntaxErrorsCarryTheParseCodeAndLineContext)
{
    try {
        parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                    "    %x = frobnicate i64 1, 2\n    ret %x\n}\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Parse);
        EXPECT_EQ(e.context().line, 4u);
        EXPECT_NE(std::string(e.what()).find("line 4"),
                  std::string::npos);
    }
}

TEST(Parser, VerifierRejectionIsCategorizedVerifyError)
{
    // Parses fine but is not a valid program: no main().
    auto mod = parseModule("module m\nfunc i64 @helper() {\n  entry:\n"
                           "    ret 0\n}\n");
    try {
        verifyModuleOrDie(*mod);
        FAIL() << "expected VerifyError";
    } catch (const VerifyError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Verify);
        std::string msg = e.what();
        EXPECT_NE(msg.find("[LP_VERIFY]"), std::string::npos) << msg;
        EXPECT_NE(msg.find("no main()"), std::string::npos) << msg;
    }
}

TEST(Parser, RejectsUndefinedValue)
{
    EXPECT_THROW(parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                             "    ret %ghost\n}\n"),
                 FatalError);
}

TEST(Parser, RejectsUnknownCallee)
{
    EXPECT_THROW(parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                             "    %x = call i64 @nothere\n    ret %x\n}\n"),
                 FatalError);
}

TEST(Parser, RejectsMissingModuleLine)
{
    EXPECT_THROW(parseModule("func i64 @main() {\n  entry:\n"
                             "    ret 0\n}\n"),
                 FatalError);
}

// Malformed numeric literals must fail loudly with line context, not
// silently parse as 0 (which is what bare strtoull would produce).

TEST(Parser, RejectsMalformedGlobalSize)
{
    try {
        parseModule("module m\nglobal @g [wat bytes]\n"
                    "func i64 @main() {\n  entry:\n    ret 0\n}\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("global size"), std::string::npos) << msg;
        EXPECT_NE(msg.find("wat"), std::string::npos) << msg;
    }
}

TEST(Parser, RejectsTrailingGarbageInGlobalSize)
{
    EXPECT_THROW(
        parseModule("module m\nglobal @g [12x bytes]\n"
                    "func i64 @main() {\n  entry:\n    ret 0\n}\n"),
        FatalError);
}

TEST(Parser, RejectsOutOfRangeGlobalSize)
{
    // 2^64 + change: overflows strtoull (ERANGE).
    EXPECT_THROW(
        parseModule("module m\nglobal @g [99999999999999999999 bytes]\n"
                    "func i64 @main() {\n  entry:\n    ret 0\n}\n"),
        FatalError);
}

TEST(Parser, RejectsMalformedExternCost)
{
    try {
        parseModule("module m\nextern i64 @!foo #pure cost = cheap\n"
                    "func i64 @main() {\n  entry:\n    ret 0\n}\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("extern cost"), std::string::npos) << msg;
    }
}

TEST(Parser, RejectsMalformedIntegerOperand)
{
    EXPECT_THROW(parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                             "    %x = add i64 1, 2two\n    ret %x\n}\n"),
                 FatalError);
}

TEST(Parser, RejectsMalformedFloatOperand)
{
    EXPECT_THROW(parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                             "    %x = fadd f64 1.5, 1.5.5\n"
                             "    %i = ftoi f64 %x\n    ret %i\n}\n"),
                 FatalError);
}

TEST(Parser, AcceptsInfAndExponentFloatLiterals)
{
    auto mod = parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                           "    %x = fadd f64 inf, -1e9\n"
                           "    %i = ftoi f64 %x\n    ret %i\n}\n");
    ASSERT_NE(mod, nullptr);
}

TEST(Parser, RoundTripHelpers)
{
    for (auto &mod :
         {test::buildSaxpy(16), test::buildSumReduction(16),
          test::buildPointerChase(16), test::buildHistogram(64, 16),
          test::buildLoopWithCalls(8, test::CalleeKind::Instrumented)}) {
        std::string once = printed(*mod);
        auto reparsed = parseModule(once, interp::stdlibImplFor);
        EXPECT_EQ(printed(*reparsed), once) << mod->name();
        // And the reparsed module still verifies and runs identically.
        ASSERT_TRUE(verifyModule(*reparsed).ok());
        interp::Machine a(*mod), b(*reparsed);
        EXPECT_EQ(a.run(), b.run()) << mod->name();
        EXPECT_EQ(a.cost(), b.cost()) << mod->name();
    }
}

class ParserRoundTrip
    : public ::testing::TestWithParam<core::BenchProgram>
{
};

TEST_P(ParserRoundTrip, SuiteKernelSurvives)
{
    auto mod = GetParam().build();
    std::string once = printed(*mod);
    auto reparsed = parseModule(once, interp::stdlibImplFor);
    EXPECT_EQ(printed(*reparsed), once);
    interp::Machine a(*mod), b(*reparsed);
    EXPECT_EQ(a.run(), b.run());
    EXPECT_EQ(a.cost(), b.cost());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ParserRoundTrip,
    ::testing::ValuesIn(suites::allPrograms()),
    [](const ::testing::TestParamInfo<core::BenchProgram> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Parser, RoundTripRandomPrograms)
{
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        auto mod = test::generateRandomProgram(seed);
        std::string once = printed(*mod);
        auto reparsed = parseModule(once, interp::stdlibImplFor);
        EXPECT_EQ(printed(*reparsed), once) << "seed " << seed;
    }
}

TEST(Parser, RoundTripSampleFile)
{
    // The checked-in example module survives parse -> print -> re-parse
    // with a byte-identical second print.
    std::ifstream in(std::string(LP_SOURCE_DIR) + "/examples/sample.lir");
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    auto mod = parseModule(buf.str(), interp::stdlibImplFor);
    std::string once = printed(*mod);
    auto reparsed = parseModule(once, interp::stdlibImplFor);
    EXPECT_EQ(printed(*reparsed), once);
    EXPECT_TRUE(verifyModule(*reparsed).ok());
}

TEST(Parser, ErrorsCarryColumns)
{
    try {
        parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                    "    %x = frobnicate i64 1, 2\n    ret %x\n}\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.context().line, 4u);
        // "frobnicate" starts at column 10 of "    %x = frobnicate ...".
        EXPECT_EQ(e.context().column, 10u);
        EXPECT_NE(std::string(e.what()).find("col 10"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Parser, InstructionsCarrySourceLocations)
{
    auto mod = parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                           "    %x = add i64 1, 2\n    ret %x\n}\n");
    const BasicBlock &entry = *mod->functions()[0]->blocks()[0];
    const Instruction *add = entry.instructions()[0].get();
    EXPECT_EQ(add->srcLoc().line, 4u);
    EXPECT_EQ(add->srcLoc().column, 5u); // "%x" starts after 4 spaces
    ASSERT_NE(entry.terminator(), nullptr);
    EXPECT_EQ(entry.terminator()->srcLoc().line, 5u);
}

} // namespace
} // namespace lp

/**
 * @file
 * Tests for the record-once / replay-many subsystem (src/trace + the
 * rt/core replay front ends): the load-bearing property is that a
 * replayed limit study is *byte-identical* — as serialized report JSON —
 * to an interpreted one for every program shape and configuration, so a
 * sweep may freely interpret once and replay the remaining cells.  Also
 * covered: trace encode/decode round-trips, the serialized container's
 * malformed-blob taxonomy (everything is LP_IO), the trace byte budget
 * (truncated recordings must fail replay, not silently report from a
 * partial stream), and keep-going sweeps quarantining those failures.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/study.hpp"
#include "guard/budget.hpp"
#include "helpers.hpp"
#include "rt/replay.hpp"
#include "support/error.hpp"
#include "trace/format.hpp"
#include "trace/index.hpp"

namespace lp {
namespace {

using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { guard::clearBudgetOverride(); }
    void TearDown() override { guard::clearBudgetOverride(); }
};

/** Every fixture shape the suite exercises elsewhere. */
std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>>
allShapes()
{
    std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>> out;
    out.emplace_back("saxpy", test::buildSaxpy(64));
    out.emplace_back("sum", test::buildSumReduction(64));
    out.emplace_back("chase", test::buildPointerChase(48));
    out.emplace_back("hist", test::buildHistogram(64, 8));
    out.emplace_back("calls",
                     test::buildLoopWithCalls(32,
                                              test::CalleeKind::Pure));
    out.emplace_back(
        "calls-inst",
        test::buildLoopWithCalls(32, test::CalleeKind::Instrumented));
    return out;
}

/** The grid the equivalence tests sweep: 3 models x ablations. */
std::vector<LPConfig>
configGrid()
{
    return {
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll),
        LPConfig::parse("reduc1-dep0-fn2", ExecModel::DoAll),
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::PartialDoAll),
        LPConfig::parse("reduc0-dep2-fn2", ExecModel::PartialDoAll),
        LPConfig::parse("reduc1-dep3-fn3", ExecModel::PartialDoAll),
        LPConfig::parse("reduc0-dep0-fn2", ExecModel::Helix),
        LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix),
        LPConfig::parse("reduc1-dep3-fn3", ExecModel::Helix),
    };
}

// ------------------------------------------- replay == interpret, bytes

TEST_F(TraceTest, ReplayReportsAreByteIdenticalAcrossTheGrid)
{
    for (auto &[name, mod] : allShapes()) {
        Loopapalooza lp(*mod);
        for (const LPConfig &cfg : configGrid()) {
            std::string interp =
                lp.run(cfg).toJson(/*withObsSnapshot=*/false).dump(2);
            std::string replay = lp.runReplay(cfg)
                                     .toJson(/*withObsSnapshot=*/false)
                                     .dump(2);
            EXPECT_EQ(interp, replay)
                << name << " under " << cfg.str();
        }
    }
}

TEST_F(TraceTest, ReplayWithOracleIsByteIdentical)
{
    auto mod = test::buildSumReduction(64);
    Loopapalooza lp(*mod);
    for (const LPConfig &cfg : configGrid()) {
        std::string interp = lp.runWithOracle(cfg)
                                 .toJson(/*withObsSnapshot=*/false)
                                 .dump(2);
        std::string replay = lp.runReplayWithOracle(cfg)
                                 .toJson(/*withObsSnapshot=*/false)
                                 .dump(2);
        EXPECT_EQ(interp, replay) << cfg.str();
    }
}

TEST_F(TraceTest, StudySweepWithTraceReplayMatchesInterpret)
{
    std::vector<core::BenchProgram> progs;
    progs.push_back(
        {"saxpy", "unit", [] { return test::buildSaxpy(32); }});
    progs.push_back(
        {"sum", "unit", [] { return test::buildSumReduction(32); }});
    core::Study study(progs, /*jobs=*/1);

    core::Study::SuiteRunOptions interp;
    interp.jobs = 1;
    core::Study::SuiteRunOptions replay;
    replay.jobs = 1;
    replay.traceReplay = true;

    const LPConfig cfg =
        LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix);
    auto a = study.runSuite("unit", cfg, interp);
    auto b = study.runSuite("unit", cfg, replay);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].toJson(false).dump(2), b[i].toJson(false).dump(2));
}

// ----------------------------------------------------- trace round-trip

TEST_F(TraceTest, DecodeEncodeRoundTripIsPayloadStable)
{
    auto mod = test::buildHistogram(64, 8);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    ASSERT_FALSE(t.truncated);
    ASSERT_GT(t.events, 0u);

    std::vector<trace::Event> events = trace::decodeEvents(t);
    EXPECT_EQ(events.size(), t.events);
    trace::Trace reencoded =
        trace::encodeEvents(events, t.finalCost, t.numFunctions,
                            t.numBlocks);
    EXPECT_EQ(reencoded.payload, t.payload);
    EXPECT_EQ(reencoded, t);
}

TEST_F(TraceTest, SerializeDeserializeRoundTrip)
{
    auto mod = test::buildSaxpy(32);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();

    std::vector<std::uint8_t> blob = trace::serialize(t);
    trace::Trace back = trace::deserialize(blob.data(), blob.size());
    EXPECT_EQ(back, t);
    EXPECT_EQ(trace::serialize(back), blob);
}

TEST_F(TraceTest, TraceFingerprintMatchesTheModule)
{
    auto mod = test::buildSaxpy(32);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    EXPECT_EQ(t.numFunctions, lp.traceIndex().numFunctions());
    EXPECT_EQ(t.numBlocks, lp.traceIndex().numBlocks());
    EXPECT_EQ(t.payload.size() <= (1ULL << 30), true);
}

// ----------------------------------------------- malformed-blob taxonomy

TEST_F(TraceTest, DeserializeRejectsMalformedBlobs)
{
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    std::vector<std::uint8_t> blob = trace::serialize(lp.trace());

    // Too short to even hold the header.
    EXPECT_THROW(trace::deserialize(blob.data(), 8), IoError);

    // Bad magic.
    auto bad = blob;
    bad[0] ^= 0xff;
    EXPECT_THROW(trace::deserialize(bad.data(), bad.size()), IoError);

    // Unsupported version.
    bad = blob;
    bad[4] = 0x7f;
    EXPECT_THROW(trace::deserialize(bad.data(), bad.size()), IoError);

    // Payload shorter than the header promises.
    EXPECT_THROW(trace::deserialize(blob.data(), blob.size() - 1),
                 IoError);
}

TEST_F(TraceTest, ReaderRejectsCorruptPayload)
{
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    ASSERT_GT(t.payload.size(), 4u);

    auto drain = [](const std::vector<std::uint8_t> &bytes) {
        trace::PayloadReader r(bytes.data(), bytes.size());
        trace::Event e;
        while (r.next(e)) {
        }
    };

    // Unknown event tag: must fail loudly, never skip.
    auto bad = t.payload;
    bad.push_back(0x3f);
    EXPECT_THROW(drain(bad), IoError);

    // Event tag whose operand varint is chopped off mid-stream.
    bad = t.payload;
    bad.push_back(static_cast<std::uint8_t>(trace::EventKind::Charge));
    EXPECT_THROW(drain(bad), IoError);
}

TEST_F(TraceTest, ReplayRejectsAForeignTrace)
{
    auto saxpy = test::buildSaxpy(32);
    auto sum = test::buildSumReduction(32);
    Loopapalooza lpa(*saxpy);
    Loopapalooza lpb(*sum);
    const LPConfig cfg =
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll);
    // saxpy's trace replayed against sum's plan: the function/block
    // fingerprint differs, so replay refuses up front.
    EXPECT_THROW(rt::replayLimitStudy(lpb.plan(), lpb.traceIndex(),
                                      lpa.trace(), cfg, "mismatch"),
                 IoError);
}

// ------------------------------------------------------ trace byte cap

TEST_F(TraceTest, TinyTraceBudgetTruncatesAndFailsReplay)
{
    guard::RunBudget b = guard::defaultBudget();
    b.maxTraceBytes = 64;
    guard::setBudgetOverride(b);

    auto mod = test::buildSaxpy(64);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    EXPECT_TRUE(t.truncated);
    EXPECT_LE(t.payload.size(), 64u + 16u); // cap plus one event slop

    const LPConfig cfg =
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll);
    try {
        lp.runReplay(cfg);
        FAIL() << "replaying a truncated trace must throw";
    }
    catch (const IoError &e) {
        EXPECT_STREQ(e.codeName(), "LP_IO");
    }
}

TEST_F(TraceTest, KeepGoingSweepQuarantinesTruncatedTraces)
{
    guard::RunBudget b = guard::defaultBudget();
    b.maxTraceBytes = 64;
    guard::setBudgetOverride(b);

    std::vector<core::BenchProgram> progs;
    progs.push_back(
        {"saxpy", "unit", [] { return test::buildSaxpy(64); }});
    core::Study study(progs, /*jobs=*/1);

    core::Study::SuiteRunOptions opts;
    opts.keepGoing = true;
    opts.traceReplay = true;
    opts.jobs = 1;
    opts.maxRetries = 1;
    opts.backoffBaseMs = 1;
    const LPConfig cfg =
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll);
    auto reports = study.runSuite("unit", cfg, opts);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].status, rt::RunStatus::Failed);
    EXPECT_EQ(reports[0].errorCode, "LP_IO");
}

// -------------------------------------------------------- varint corner

TEST_F(TraceTest, ZigzagRoundTripsExtremes)
{
    for (std::int64_t v :
         {std::int64_t(0), std::int64_t(-1), std::int64_t(1),
          std::int64_t(INT64_MAX), std::int64_t(INT64_MIN)})
        EXPECT_EQ(trace::zigzagDecode(trace::zigzagEncode(v)), v);
}

} // namespace
} // namespace lp

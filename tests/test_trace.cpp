/**
 * @file
 * Tests for the record-once / replay-many subsystem (src/trace + the
 * rt/core replay front ends): the load-bearing property is that a
 * replayed limit study is *byte-identical* — as serialized report JSON —
 * to an interpreted one for every program shape and configuration, so a
 * sweep may freely interpret once and replay the remaining cells.  Also
 * covered: trace encode/decode round-trips, the serialized container's
 * malformed-blob taxonomy (everything is LP_IO), the trace byte budget
 * (truncated recordings must fail replay, not silently report from a
 * partial stream), and keep-going sweeps quarantining those failures.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/study.hpp"
#include "guard/budget.hpp"
#include "helpers.hpp"
#include "rt/replay.hpp"
#include "support/error.hpp"
#include "trace/format.hpp"
#include "trace/index.hpp"

namespace lp {
namespace {

using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { guard::clearBudgetOverride(); }
    void TearDown() override { guard::clearBudgetOverride(); }
};

/** Every fixture shape the suite exercises elsewhere. */
std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>>
allShapes()
{
    std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>> out;
    out.emplace_back("saxpy", test::buildSaxpy(64));
    out.emplace_back("sum", test::buildSumReduction(64));
    out.emplace_back("chase", test::buildPointerChase(48));
    out.emplace_back("hist", test::buildHistogram(64, 8));
    out.emplace_back("calls",
                     test::buildLoopWithCalls(32,
                                              test::CalleeKind::Pure));
    out.emplace_back(
        "calls-inst",
        test::buildLoopWithCalls(32, test::CalleeKind::Instrumented));
    return out;
}

/** The grid the equivalence tests sweep: 3 models x ablations. */
std::vector<LPConfig>
configGrid()
{
    return {
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll),
        LPConfig::parse("reduc1-dep0-fn2", ExecModel::DoAll),
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::PartialDoAll),
        LPConfig::parse("reduc0-dep2-fn2", ExecModel::PartialDoAll),
        LPConfig::parse("reduc1-dep3-fn3", ExecModel::PartialDoAll),
        LPConfig::parse("reduc0-dep0-fn2", ExecModel::Helix),
        LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix),
        LPConfig::parse("reduc1-dep3-fn3", ExecModel::Helix),
    };
}

// ------------------------------------------- replay == interpret, bytes

TEST_F(TraceTest, ReplayReportsAreByteIdenticalAcrossTheGrid)
{
    for (auto &[name, mod] : allShapes()) {
        Loopapalooza lp(*mod);
        for (const LPConfig &cfg : configGrid()) {
            std::string interp =
                lp.run(cfg).toJson(/*withObsSnapshot=*/false).dump(2);
            std::string replay = lp.runReplay(cfg)
                                     .toJson(/*withObsSnapshot=*/false)
                                     .dump(2);
            EXPECT_EQ(interp, replay)
                << name << " under " << cfg.str();
        }
    }
}

TEST_F(TraceTest, ReplayWithOracleIsByteIdentical)
{
    auto mod = test::buildSumReduction(64);
    Loopapalooza lp(*mod);
    for (const LPConfig &cfg : configGrid()) {
        std::string interp = lp.runWithOracle(cfg)
                                 .toJson(/*withObsSnapshot=*/false)
                                 .dump(2);
        std::string replay = lp.runReplayWithOracle(cfg)
                                 .toJson(/*withObsSnapshot=*/false)
                                 .dump(2);
        EXPECT_EQ(interp, replay) << cfg.str();
    }
}

TEST_F(TraceTest, StudySweepWithTraceReplayMatchesInterpret)
{
    std::vector<core::BenchProgram> progs;
    progs.push_back(
        {"saxpy", "unit", [] { return test::buildSaxpy(32); }});
    progs.push_back(
        {"sum", "unit", [] { return test::buildSumReduction(32); }});
    core::Study study(progs, /*jobs=*/1);

    core::Study::SuiteRunOptions interp;
    interp.jobs = 1;
    core::Study::SuiteRunOptions replay;
    replay.jobs = 1;
    replay.traceReplay = true;

    const LPConfig cfg =
        LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix);
    auto a = study.runSuite("unit", cfg, interp);
    auto b = study.runSuite("unit", cfg, replay);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].toJson(false).dump(2), b[i].toJson(false).dump(2));
}

// ----------------------------------------------------- trace round-trip

TEST_F(TraceTest, DecodeEncodeRoundTripIsPayloadStable)
{
    auto mod = test::buildHistogram(64, 8);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    ASSERT_FALSE(t.truncated);
    ASSERT_GT(t.events, 0u);

    std::vector<trace::Event> events = trace::decodeEvents(t);
    EXPECT_EQ(events.size(), t.events);
    trace::Trace reencoded =
        trace::encodeEvents(events, t.finalCost, t.numFunctions,
                            t.numBlocks);
    EXPECT_EQ(reencoded.payload, t.payload);
    EXPECT_EQ(reencoded, t);
}

TEST_F(TraceTest, SerializeDeserializeRoundTrip)
{
    auto mod = test::buildSaxpy(32);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();

    std::vector<std::uint8_t> blob = trace::serialize(t);
    trace::Trace back = trace::deserialize(blob.data(), blob.size());
    EXPECT_EQ(back, t);
    EXPECT_EQ(trace::serialize(back), blob);
}

TEST_F(TraceTest, TraceFingerprintMatchesTheModule)
{
    auto mod = test::buildSaxpy(32);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    EXPECT_EQ(t.numFunctions, lp.traceIndex().numFunctions());
    EXPECT_EQ(t.numBlocks, lp.traceIndex().numBlocks());
    EXPECT_EQ(t.payload.size() <= (1ULL << 30), true);
}

// ----------------------------------------------- malformed-blob taxonomy

TEST_F(TraceTest, DeserializeRejectsMalformedBlobs)
{
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    std::vector<std::uint8_t> blob = trace::serialize(lp.trace());

    // Too short to even hold the header.
    EXPECT_THROW(trace::deserialize(blob.data(), 8), IoError);

    // Bad magic.
    auto bad = blob;
    bad[0] ^= 0xff;
    EXPECT_THROW(trace::deserialize(bad.data(), bad.size()), IoError);

    // Unsupported version.
    bad = blob;
    bad[4] = 0x7f;
    EXPECT_THROW(trace::deserialize(bad.data(), bad.size()), IoError);

    // Payload shorter than the header promises.
    EXPECT_THROW(trace::deserialize(blob.data(), blob.size() - 1),
                 IoError);
}

TEST_F(TraceTest, DeserializeRejectsHandCraftedCorruptBlobs)
{
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    std::vector<std::uint8_t> blob = trace::serialize(lp.trace());
    ASSERT_GE(blob.size(), 56u); // v2: header + crcs + some payload

    // Each row damages one well-known region of the container; every
    // one must be rejected with LP_IO, never indexed out of bounds or
    // replayed as a wrong answer.
    struct Row
    {
        const char *what;
        std::size_t offset;
        std::uint8_t value; ///< byte written at offset
    };
    const std::size_t payloadStart = blob.size() - lp.trace().payload.size();
    const Row rows[] = {
        {"magic", 1, 0x00},
        {"version zero", 4, 0x00},
        {"version future", 4, 0x63},
        {"fingerprint functions", 8, 0xee},
        {"fingerprint blocks", 12, 0xee},
        {"event count low byte", 16, 0xee},
        {"event count high byte", 23, 0x80},
        {"final cost", 24, 0xee},
        {"payload length absurd", 38, 0x7f}, // claims ~2^55 bytes
        {"unknown flag bit", 43, 0x80},
        {"header crc", 44, 0x5a},
        {"chunk count", 48, 0x09},
        {"chunk crc", 52, 0x5a},
        {"payload first byte", payloadStart, 0x3f},
        {"payload last byte", blob.size() - 1, 0x91},
    };
    for (const Row &row : rows) {
        auto bad = blob;
        ASSERT_LT(row.offset, bad.size()) << row.what;
        if (bad[row.offset] == row.value)
            continue; // would be a no-op mutation
        bad[row.offset] = row.value;
        try {
            trace::deserialize(bad.data(), bad.size());
            FAIL() << row.what << ": corrupt blob was accepted";
        }
        catch (const IoError &e) {
            EXPECT_STREQ(e.codeName(), "LP_IO") << row.what;
        }
    }

    // Structural damage: truncation and garbage extension at every
    // interesting boundary.
    for (std::size_t size :
         {std::size_t(0), std::size_t(8), std::size_t(43),
          std::size_t(47), std::size_t(51), payloadStart,
          blob.size() - 1}) {
        EXPECT_THROW(trace::deserialize(blob.data(), size), IoError)
            << "truncated to " << size;
    }
    auto extended = blob;
    extended.push_back(0x00);
    EXPECT_THROW(trace::deserialize(extended.data(), extended.size()),
                 IoError);
}

TEST_F(TraceTest, EveryPossibleSingleByteCorruptionIsDetected)
{
    // The v2 checksums make this exhaustive check affordable: flip one
    // bit in EVERY byte of the container and require a categorized
    // rejection each time.  (A v1 blob could not pass this — payload
    // damage that keeps the stream decodable was accepted silently.)
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    std::vector<std::uint8_t> blob = trace::serialize(lp.trace());
    for (std::size_t i = 0; i < blob.size(); ++i) {
        auto bad = blob;
        bad[i] ^= 0x01;
        EXPECT_THROW(trace::deserialize(bad.data(), bad.size()), IoError)
            << "flipped bit 0 of byte " << i;
    }
}

TEST_F(TraceTest, VersionOneBlobsStayReadable)
{
    // Hand-build the v1 container (44-byte header, no checksums) for a
    // real payload: deserialize must still accept it, and re-serialize
    // it in the current (v2) format.
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();

    std::vector<std::uint8_t> v1;
    auto put32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            v1.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto put64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            v1.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put32(0x5254504c); // "LPTR"
    put32(1);          // version
    put32(t.numFunctions);
    put32(t.numBlocks);
    put64(t.events);
    put64(t.finalCost);
    put64(t.payload.size());
    put32(0); // flags
    v1.insert(v1.end(), t.payload.begin(), t.payload.end());

    trace::Trace back = trace::deserialize(v1.data(), v1.size());
    EXPECT_EQ(back, t);
    EXPECT_EQ(trace::serialize(back), trace::serialize(t));

    // v1 blobs get the structural validation too: a decodable-but-
    // wrong event count must still be rejected.
    auto badCount = v1;
    badCount[16] ^= 0x01;
    EXPECT_THROW(trace::deserialize(badCount.data(), badCount.size()),
                 IoError);
    // ... as do unknown flag bits.
    auto badFlags = v1;
    badFlags[40] |= 0x02;
    EXPECT_THROW(trace::deserialize(badFlags.data(), badFlags.size()),
                 IoError);
}

TEST_F(TraceTest, DeserializeRejectsOutOfRangeIds)
{
    // A payload that decodes cleanly but names blocks/functions outside
    // the module fingerprint must be rejected at parse time, not crash
    // replay later.
    trace::Trace t = trace::encodeEvents(
        {{trace::EventKind::FuncEnter, 2, 0}}, /*finalCost=*/1,
        /*numFunctions=*/2, /*numBlocks=*/3);
    std::vector<std::uint8_t> blob = trace::serialize(t);
    EXPECT_THROW(trace::deserialize(blob.data(), blob.size()), IoError);

    trace::Trace t2 = trace::encodeEvents(
        {{trace::EventKind::FuncEnter, 0, 0},
         {trace::EventKind::BlockEnter, 3, 0}},
        1, 2, 3);
    std::vector<std::uint8_t> blob2 = trace::serialize(t2);
    EXPECT_THROW(trace::deserialize(blob2.data(), blob2.size()), IoError);

    // In-range ids with a correct event count parse fine.
    trace::Trace ok = trace::encodeEvents(
        {{trace::EventKind::FuncEnter, 1, 0},
         {trace::EventKind::BlockEnter, 2, 0},
         {trace::EventKind::FuncExit, 0, 0}},
        1, 2, 3);
    std::vector<std::uint8_t> blob3 = trace::serialize(ok);
    EXPECT_EQ(trace::deserialize(blob3.data(), blob3.size()), ok);
}

TEST_F(TraceTest, ReaderRejectsCorruptPayload)
{
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    ASSERT_GT(t.payload.size(), 4u);

    auto drain = [](const std::vector<std::uint8_t> &bytes) {
        trace::PayloadReader r(bytes.data(), bytes.size());
        trace::Event e;
        while (r.next(e)) {
        }
    };

    // Unknown event tag: must fail loudly, never skip.
    auto bad = t.payload;
    bad.push_back(0x3f);
    EXPECT_THROW(drain(bad), IoError);

    // Event tag whose operand varint is chopped off mid-stream.
    bad = t.payload;
    bad.push_back(static_cast<std::uint8_t>(trace::EventKind::Charge));
    EXPECT_THROW(drain(bad), IoError);
}

TEST_F(TraceTest, ReplayRejectsAForeignTrace)
{
    auto saxpy = test::buildSaxpy(32);
    auto sum = test::buildSumReduction(32);
    Loopapalooza lpa(*saxpy);
    Loopapalooza lpb(*sum);
    const LPConfig cfg =
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll);
    // saxpy's trace replayed against sum's plan: the function/block
    // fingerprint differs, so replay refuses up front.
    EXPECT_THROW(rt::replayLimitStudy(lpb.plan(), lpb.traceIndex(),
                                      lpa.trace(), cfg, "mismatch"),
                 IoError);
}

// ------------------------------------------------------ trace byte cap

TEST_F(TraceTest, TinyTraceBudgetTruncatesAndFailsReplay)
{
    guard::RunBudget b = guard::defaultBudget();
    b.maxTraceBytes = 64;
    guard::setBudgetOverride(b);

    auto mod = test::buildSaxpy(64);
    Loopapalooza lp(*mod);
    const trace::Trace &t = lp.trace();
    EXPECT_TRUE(t.truncated);
    EXPECT_LE(t.payload.size(), 64u + 16u); // cap plus one event slop

    const LPConfig cfg =
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll);
    try {
        lp.runReplay(cfg);
        FAIL() << "replaying a truncated trace must throw";
    }
    catch (const IoError &e) {
        EXPECT_STREQ(e.codeName(), "LP_IO");
    }
}

TEST_F(TraceTest, KeepGoingSweepQuarantinesTruncatedTraces)
{
    guard::RunBudget b = guard::defaultBudget();
    b.maxTraceBytes = 64;
    guard::setBudgetOverride(b);

    std::vector<core::BenchProgram> progs;
    progs.push_back(
        {"saxpy", "unit", [] { return test::buildSaxpy(64); }});
    core::Study study(progs, /*jobs=*/1);

    core::Study::SuiteRunOptions opts;
    opts.keepGoing = true;
    opts.traceReplay = true;
    opts.jobs = 1;
    opts.maxRetries = 1;
    opts.backoffBaseMs = 1;
    const LPConfig cfg =
        LPConfig::parse("reduc0-dep0-fn0", ExecModel::DoAll);
    auto reports = study.runSuite("unit", cfg, opts);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].status, rt::RunStatus::Failed);
    EXPECT_EQ(reports[0].errorCode, "LP_IO");
}

// -------------------------------------------------------- varint corner

TEST_F(TraceTest, ZigzagRoundTripsExtremes)
{
    for (std::int64_t v :
         {std::int64_t(0), std::int64_t(-1), std::int64_t(1),
          std::int64_t(INT64_MAX), std::int64_t(INT64_MIN)})
        EXPECT_EQ(trace::zigzagDecode(trace::zigzagEncode(v)), v);
}

} // namespace
} // namespace lp

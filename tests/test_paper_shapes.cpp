/**
 * @file
 * The reproduction's acceptance tests: the qualitative result SHAPES the
 * paper reports (Section IV, Figures 2-5) must hold on our suites.  We
 * deliberately assert orderings and coarse magnitudes, not absolute
 * numbers — the substrate is a synthetic suite, not the authors' SPEC
 * installation (see DESIGN.md).
 */

#include <gtest/gtest.h>

#include "core/configs.hpp"
#include "core/study.hpp"
#include "suites/registry.hpp"

namespace lp {
namespace {

using rt::ExecModel;
using rt::LPConfig;

LPConfig
cfg(const char *flags, ExecModel model)
{
    return LPConfig::parse(flags, model);
}

/** Shared fixture: prepare all programs once for the whole test suite. */
class PaperShapes : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        study_ = new core::Study(suites::allPrograms());
    }

    static void
    TearDownTestSuite()
    {
        delete study_;
        study_ = nullptr;
    }

    static double
    speedup(const std::string &suite, const LPConfig &c)
    {
        return core::Study::geomeanSpeedup(study_->runSuite(suite, c));
    }

    static double
    coverage(const std::string &suite, const LPConfig &c)
    {
        return core::Study::geomeanCoverage(study_->runSuite(suite, c));
    }

    static core::Study *study_;
};

core::Study *PaperShapes::study_ = nullptr;

TEST_F(PaperShapes, NonNumericFlatUnderDoall)
{
    // Paper: 1.1x-1.3x for SpecINT under DOALL, both reduc settings.
    for (const char *flags : {"reduc0-dep0-fn0", "reduc1-dep0-fn0"}) {
        for (const char *suite : {"cint2000", "cint2006"}) {
            double s = speedup(suite, cfg(flags, ExecModel::DoAll));
            EXPECT_GE(s, 1.0) << suite << " " << flags;
            EXPECT_LE(s, 1.8) << suite << " " << flags;
        }
    }
}

TEST_F(PaperShapes, NumericGainsUnderDoall)
{
    // Paper: 1.6x-3.1x already at the most restrictive configuration.
    for (const char *suite : {"eembc", "cfp2000", "cfp2006"}) {
        double s =
            speedup(suite, cfg("reduc0-dep0-fn0", ExecModel::DoAll));
        EXPECT_GE(s, 1.4) << suite;
        EXPECT_LE(s, 3.5) << suite;
    }
}

TEST_F(PaperShapes, MinimumPdoallEqualsDoall)
{
    // Paper: "The minimum reduc0-dep0-fn0 PDOALL achieves identical
    // results to its DOALL counterpart for both benchmark classes."
    for (const char *suite :
         {"eembc", "cfp2000", "cfp2006", "cint2000", "cint2006"}) {
        double doall =
            speedup(suite, cfg("reduc0-dep0-fn0", ExecModel::DoAll));
        double pdoall = speedup(
            suite, cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
        EXPECT_NEAR(doall, pdoall, 0.05 * doall) << suite;
    }
}

TEST_F(PaperShapes, Dep2LiftsNumericMoreThanNonNumeric)
{
    // Paper: dep2 takes numeric suites to 2.9-3.7x while non-numeric
    // move only modestly.
    LPConfig base = cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll);
    LPConfig dep2 = cfg("reduc0-dep2-fn0", ExecModel::PartialDoAll);
    double numericGain = speedup("cfp2006", dep2) / speedup("cfp2006", base);
    double intGain = speedup("cint2000", dep2) / speedup("cint2000", base);
    EXPECT_GT(numericGain, 1.2);
    EXPECT_LT(intGain, numericGain + 0.5);
}

TEST_F(PaperShapes, Reduc1MattersForNumericNotForInt)
{
    LPConfig r0 = cfg("reduc0-dep2-fn0", ExecModel::PartialDoAll);
    LPConfig r1 = cfg("reduc1-dep2-fn0", ExecModel::PartialDoAll);
    // SpecFP2000 "benefits greatly from both reduc1 and dep2".
    EXPECT_GT(speedup("cfp2000", r1), 1.5 * speedup("cfp2000", r0));
    // "...with reduc1 having no effect" for SpecINT2000.
    EXPECT_NEAR(speedup("cint2000", r1), speedup("cint2000", r0), 0.15);
}

TEST_F(PaperShapes, EembcPrefersFn2OverReduc1Dep2)
{
    // Paper: "EEMBC ... performs even better with reduc0-dep0-fn2 PDOALL
    // than reduc1-dep2-fn0 PDOALL."  We assert the weaker, robust form:
    // fn2 alone buys EEMBC a material fraction of the r1-d2 gain.
    double fn2 = speedup("eembc",
                         cfg("reduc0-dep0-fn2", ExecModel::PartialDoAll));
    double rd = speedup("eembc",
                        cfg("reduc1-dep2-fn0", ExecModel::PartialDoAll));
    EXPECT_GT(fn2, 0.55 * rd);
    EXPECT_GT(fn2, 1.5); // fn2 is a real lever for EEMBC
}

TEST_F(PaperShapes, HelixDep1IsTheHeadlineForInt)
{
    // Paper headline: 4.6x / 7.2x for SpecINT2000/2006 under
    // reduc1-dep1-fn2 HELIX, far above every realistic PDOALL point.
    double int2000 = speedup("cint2000", core::bestHelix());
    double int2006 = speedup("cint2006", core::bestHelix());
    EXPECT_GT(int2000, 2.5);
    EXPECT_LT(int2000, 7.0);
    EXPECT_GT(int2006, 4.5);
    EXPECT_LT(int2006, 12.0);
    EXPECT_GT(int2006, int2000); // 2006 above 2000, as in the paper

    double bestPdoall2000 = speedup("cint2000", core::bestPdoall());
    double bestPdoall2006 = speedup("cint2006", core::bestPdoall());
    EXPECT_GT(int2000, 1.5 * bestPdoall2000);
    EXPECT_GT(int2006, 1.5 * bestPdoall2006);
}

TEST_F(PaperShapes, HelixLiftsNumericToTens)
{
    // Paper: 21.6x-50.6x for the numeric suites at the best HELIX point.
    for (const char *suite : {"eembc", "cfp2000", "cfp2006"}) {
        double s = speedup(suite, core::bestHelix());
        EXPECT_GT(s, 10.0) << suite;
        EXPECT_LT(s, 70.0) << suite;
    }
}

TEST_F(PaperShapes, Dep3Fn3IsAboveEveryRealisticPdoallPoint)
{
    // The unrealistic topline must dominate the realistic PDOALL points.
    for (const char *suite : {"cint2000", "cint2006", "cfp2000"}) {
        double top = speedup(
            suite, cfg("reduc0-dep3-fn3", ExecModel::PartialDoAll));
        double realistic = speedup(suite, core::bestPdoall());
        EXPECT_GE(top, 0.95 * realistic) << suite;
    }
}

TEST_F(PaperShapes, CoverageExplainsTheHelixGain)
{
    // Paper Fig. 5: coverage rises PDOALL dep0-fn2 -> HELIX dep0-fn2 ->
    // HELIX dep1-fn2, most dramatically for the non-numeric suites.
    const auto &configs = core::coverageConfigs();
    ASSERT_EQ(configs.size(), 3u);
    for (const char *suite : {"cint2000", "cint2006"}) {
        double c0 = coverage(suite, configs[0].config); // PDOALL d0
        double c1 = coverage(suite, configs[1].config); // HELIX d0
        double c2 = coverage(suite, configs[2].config); // HELIX d1
        EXPECT_GE(c1, c0) << suite;
        EXPECT_GT(c2, c1 * 1.2) << suite;
        EXPECT_GT(c2, 40.0) << suite; // percent
    }
}

TEST_F(PaperShapes, PdoallWinsWhereThePaperSaysItDoes)
{
    // Fig. 4: 179.art, 450.soplex, 482.sphinx and 429.mcf prefer the
    // best PDOALL over the best HELIX.
    for (const auto &prog : study_->programs()) {
        bool expectPdoall = prog->name() == "179.art-like" ||
                            prog->name() == "450.soplex-like" ||
                            prog->name() == "482.sphinx3-like" ||
                            prog->name() == "429.mcf-like";
        if (!expectPdoall)
            continue;
        double p = prog->run(core::bestPdoall()).speedup();
        double h = prog->run(core::bestHelix()).speedup();
        EXPECT_GT(p, h) << prog->name();
    }
}

TEST_F(PaperShapes, LibquantumIsTheOutlier)
{
    // Fig. 4's extreme bar: libquantum dwarfs the rest of CINT2006.
    double libq = 0, best = 0;
    for (const auto &prog : study_->programs()) {
        if (prog->suite() != "cint2006")
            continue;
        double s = prog->run(core::bestHelix()).speedup();
        if (prog->name() == "462.libquantum-like")
            libq = s;
        else
            best = std::max(best, s);
    }
    EXPECT_GT(libq, 20.0);
}

} // namespace
} // namespace lp

/**
 * @file
 * End-to-end tests for the lp-lint executable: exit-status contract
 * (0 = clean, 1 = error-level findings, 2 = usage/input error) and the
 * --sarif PATH side channel (SARIF lands in the file, stdout is
 * byte-identical with and without it).
 *
 * The binary path comes in via LP_LINT_BIN; commands run through
 * std::system with stdout redirected to a scratch file.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace {

std::string
corpus(const std::string &name)
{
    return std::string(LP_SOURCE_DIR) + "/tests/lint_corpus/" + name +
        ".lir";
}

std::string
scratch(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Run `lp-lint <args>` with stdout captured; returns the exit code. */
int
runLint(const std::string &args, const std::string &stdoutPath)
{
    std::string cmd = std::string(LP_LINT_BIN) + " " + args + " > " +
        stdoutPath + " 2>/dev/null";
    int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(LintCli, CleanInputExitsZero)
{
    std::string sample =
        std::string(LP_SOURCE_DIR) + "/examples/sample.lir";
    EXPECT_EQ(runLint(sample, scratch("cli_clean.out")), 0);
}

TEST(LintCli, ErrorFindingExitsOne)
{
    // global_oob carries an error-severity finding.
    EXPECT_EQ(runLint(corpus("global_oob"), scratch("cli_err.out")), 1);
}

TEST(LintCli, WarningsExitZeroUntilWerror)
{
    EXPECT_EQ(runLint(corpus("dead_def"), scratch("cli_warn.out")), 0);
    EXPECT_EQ(
        runLint("--werror " + corpus("dead_def"), scratch("cli_we.out")),
        1);
}

TEST(LintCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(runLint("", scratch("cli_usage.out")), 2);
    EXPECT_EQ(runLint("/nonexistent/missing.lir",
                      scratch("cli_missing.out")),
              2);
    EXPECT_EQ(runLint("--sarif", scratch("cli_sarif_noarg.out")), 2);
}

TEST(LintCli, SarifPathWritesFileWithoutTouchingStdout)
{
    std::string plainOut = scratch("cli_plain.out");
    std::string sarifOut = scratch("cli_sarif.out");
    std::string sarifFile = scratch("cli_out.sarif");
    std::remove(sarifFile.c_str());

    int plainRc = runLint(corpus("dead_def"), plainOut);
    int sarifRc =
        runLint("--sarif " + sarifFile + " " + corpus("dead_def"),
                sarifOut);

    // Same verdict, byte-identical table on stdout.
    EXPECT_EQ(plainRc, sarifRc);
    EXPECT_EQ(readFile(plainOut), readFile(sarifOut));

    // And the file really is SARIF.
    std::string text = readFile(sarifFile);
    ASSERT_FALSE(text.empty());
    std::string err;
    lp::obs::Json doc = lp::obs::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.at("version").asString(), "2.1.0");
    EXPECT_GE(doc.at("runs").at(0).at("results").size(), 1u);
}

TEST(LintCli, SarifPathComposesWithErrorExit)
{
    // The side channel must not launder the exit status.
    std::string sarifFile = scratch("cli_err.sarif");
    EXPECT_EQ(runLint("--sarif " + sarifFile + " " + corpus("global_oob"),
                      scratch("cli_err_sarif.out")),
              1);
    EXPECT_FALSE(readFile(sarifFile).empty());
}

TEST(LintCli, UnwritableSarifPathExitsTwo)
{
    EXPECT_EQ(runLint("--sarif /nonexistent/dir/out.sarif " +
                          corpus("dead_def"),
                      scratch("cli_sarif_bad.out")),
              2);
}

} // namespace

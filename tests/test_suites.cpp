/**
 * @file
 * Tests over the bundled benchmark suites: every kernel builds a valid
 * module, runs deterministically, and exhibits the dependence profile its
 * documentation claims (parameterized across all 30 kernels).
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/ssa_verify.hpp"
#include "core/driver.hpp"
#include "interp/machine.hpp"
#include "ir/verifier.hpp"
#include "core/configs.hpp"
#include "suites/registry.hpp"

namespace lp {
namespace {

using rt::ExecModel;
using rt::LPConfig;

class SuiteKernel : public ::testing::TestWithParam<core::BenchProgram>
{
};

TEST_P(SuiteKernel, ModuleVerifies)
{
    auto mod = GetParam().build();
    ir::VerifyResult r = ir::verifyModule(*mod);
    EXPECT_TRUE(r.ok()) << r.message();
    ir::VerifyResult ssa = analysis::verifySSA(*mod);
    EXPECT_TRUE(ssa.ok()) << ssa.message();
}

TEST_P(SuiteKernel, RunsDeterministically)
{
    auto m1 = GetParam().build();
    auto m2 = GetParam().build();
    interp::Machine a(*m1), b(*m2);
    EXPECT_EQ(a.run(), b.run());
    EXPECT_EQ(a.cost(), b.cost());
    // Kernels are sized for quick runs: between 50k and 10M instructions.
    EXPECT_GE(a.cost(), 50'000u);
    EXPECT_LE(a.cost(), 10'000'000u);
}

TEST_P(SuiteKernel, AllLoopsAreCanonical)
{
    auto mod = GetParam().build();
    core::Loopapalooza lp(*mod);
    for (const auto &fp : lp.plan().functionPlans()) {
        for (const auto &lplan : fp->loopPlans) {
            ASSERT_NE(lplan.loop, nullptr);
            EXPECT_TRUE(lplan.loop->isCanonical())
                << lplan.loop->label();
        }
    }
}

TEST_P(SuiteKernel, SpeedupInvariantsHoldAcrossConfigs)
{
    auto mod = GetParam().build();
    core::Loopapalooza lp(*mod);
    double prevSerial = 0.0;
    for (const auto &named : core::paperConfigs()) {
        rt::ProgramReport rep = lp.run(named.config);
        EXPECT_LE(rep.parallelCost, rep.serialCost) << named.label;
        EXPECT_GE(rep.coverage, 0.0);
        EXPECT_LE(rep.coverage, 1.0);
        // Serial cost is a property of the program, not the config.
        if (prevSerial != 0.0) {
            EXPECT_EQ(static_cast<double>(rep.serialCost), prevSerial);
        }
        prevSerial = static_cast<double>(rep.serialCost);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SuiteKernel,
    ::testing::ValuesIn(suites::allPrograms()),
    [](const ::testing::TestParamInfo<core::BenchProgram> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(SuiteRegistry, AllSuitesPresent)
{
    const auto &all = suites::allPrograms();
    EXPECT_GE(all.size(), 30u);
    EXPECT_EQ(suites::programsInSuite("eembc").size(), 6u);
    EXPECT_EQ(suites::programsInSuite("cfp2000").size(), 5u);
    EXPECT_EQ(suites::programsInSuite("cfp2006").size(), 5u);
    EXPECT_EQ(suites::programsInSuite("cint2000").size(), 7u);
    EXPECT_EQ(suites::programsInSuite("cint2006").size(), 7u);
    EXPECT_EQ(suites::nonNumericPrograms().size(), 14u);
    EXPECT_EQ(suites::numericPrograms().size(), 16u);
    // Names unique.
    std::set<std::string> names;
    for (const auto &p : all)
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(SuiteProfiles, VprIsSerialUntilFn3)
{
    for (const auto &prog : suites::programsInSuite("cint2000")) {
        if (prog.name != "175.vpr-like")
            continue;
        core::PreparedProgram pp(prog);
        double fn2 = pp.run(LPConfig::parse("reduc1-dep2-fn2",
                                            ExecModel::PartialDoAll))
                         .speedup();
        double fn3 = pp.run(LPConfig::parse("reduc1-dep2-fn3",
                                            ExecModel::PartialDoAll))
                         .speedup();
        EXPECT_LT(fn2, 1.2); // rand() keeps it serial
        EXPECT_GE(fn3, fn2);
    }
}

TEST(SuiteProfiles, LibquantumExplodesAtFn2)
{
    for (const auto &prog : suites::programsInSuite("cint2006")) {
        if (prog.name != "462.libquantum-like")
            continue;
        core::PreparedProgram pp(prog);
        double fn0 = pp.run(LPConfig::parse("reduc0-dep0-fn0",
                                            ExecModel::PartialDoAll))
                         .speedup();
        double fn2 = pp.run(LPConfig::parse("reduc0-dep0-fn2",
                                            ExecModel::PartialDoAll))
                         .speedup();
        // The famous outlier: the amplitude loop needs only fn2.
        EXPECT_LT(fn0, 1.5);
        EXPECT_GT(fn2, 4.0);
    }
}

TEST(SuiteProfiles, GzipNeedsHelixDep1)
{
    for (const auto &prog : suites::programsInSuite("cint2000")) {
        if (prog.name != "164.gzip-like")
            continue;
        core::PreparedProgram pp(prog);
        double pdoall = pp.run(core::bestPdoall()).speedup();
        double helixDep0 = pp.run(LPConfig::parse(
                                      "reduc1-dep0-fn2", ExecModel::Helix))
                               .speedup();
        double helixDep1 = pp.run(core::bestHelix()).speedup();
        // Speculation fails (hash table conflicts every position), and
        // HELIX only helps once dep1 forwards the cursor.
        EXPECT_LT(pdoall, 1.5);
        EXPECT_GT(helixDep1, 2.0 * helixDep0);
        EXPECT_GT(helixDep1, 2.5);
    }
}

TEST(SuiteProfiles, PdoallPrefersArtSoplexSphinxMcf06)
{
    const char *names[] = {"179.art-like", "450.soplex-like",
                           "482.sphinx3-like", "429.mcf-like"};
    for (const auto &prog : suites::allPrograms()) {
        for (const char *n : names) {
            if (prog.name != n)
                continue;
            core::PreparedProgram pp(prog);
            double pdoall = pp.run(core::bestPdoall()).speedup();
            double helix = pp.run(core::bestHelix()).speedup();
            EXPECT_GT(pdoall, helix) << prog.name;
        }
    }
}

} // namespace
} // namespace lp

/**
 * @file
 * Shared test fixtures: small hand-built IR programs with known loop
 * structure, dependence classes, and expected results.
 */

#pragma once

#include <memory>

#include "interp/stdlib.hpp"
#include "ir/builder.hpp"

namespace lp::test {

/**
 * saxpy: three init loops then `c[i] = a[i]*3 + b[i]` over @p n elements;
 * main returns c[n-1].  Fully DOALL-parallel: computable IV, statically
 * disjoint accesses, no calls.
 */
std::unique_ptr<ir::Module> buildSaxpy(std::int64_t n);

/**
 * sum: `acc += a[i]` over @p n elements with a[i] = i; returns acc.
 * One reduction LCD; parallel only under reduc1 (or dep2/dep3).
 */
std::unique_ptr<ir::Module> buildSumReduction(std::int64_t n);

/**
 * chase: walks an @p n-node linked list threaded through a global arena
 * in allocation order (node i at arena[2*i]), summing payloads.  The
 * carried pointer is a non-computable but stride-predictable register
 * LCD; the "next" pointer loads early in each iteration, so HELIX-dep1
 * synchronization is cheap.
 */
std::unique_ptr<ir::Module> buildPointerChase(std::int64_t n);

/**
 * chase-shuffled: same list, but the nodes are threaded in a permuted
 * order, making the carried pointer unpredictable.
 */
std::unique_ptr<ir::Module> buildPointerChaseShuffled(std::int64_t n);

/**
 * histogram: `hist[key(i) % buckets]++` over @p n items; key is an
 * LCG-scrambled function of i.  Memory RAW conflicts whose frequency
 * drops as @p buckets grows.
 */
std::unique_ptr<ir::Module> buildHistogram(std::int64_t n,
                                           std::int64_t buckets);

/**
 * calls: a loop whose body calls one helper per element; variants select
 * a pure helper, an instrumentable impure helper (writes an out-array
 * element), or a helper calling the unsafe rand().
 */
enum class CalleeKind { Pure, Instrumented, UnsafeExt };
std::unique_ptr<ir::Module> buildLoopWithCalls(std::int64_t n,
                                               CalleeKind kind);

} // namespace lp::test

/**
 * @file
 * Tests for the lp::guard robustness layer: the categorized error
 * taxonomy, run budgets (fuel, wall-clock deadline, heap cap),
 * deterministic fault injection, quarantine/retry via guardedRun,
 * keep-going Study sweeps, and sweep checkpoints.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "guard/budget.hpp"
#include "guard/checkpoint.hpp"
#include "guard/fault.hpp"
#include "guard/quarantine.hpp"
#include "helpers.hpp"
#include "interp/machine.hpp"
#include "interp/memory.hpp"
#include "ir/parser.hpp"
#include "obs/json.hpp"
#include "rt/report.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

/**
 * Every guard test starts and ends disarmed: the CI fault-injection
 * matrix runs this binary with LP_FAULT set in the environment, and
 * these tests assert *specific* fault behavior, so an ambient fault
 * must never leak in (or out, to a later test).
 */
class GuardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        guard::setFault("", 0);
        guard::clearBudgetOverride();
    }

    void
    TearDown() override
    {
        guard::setFault("", 0);
        guard::clearBudgetOverride();
    }
};

// ------------------------------------------------------- error taxonomy

TEST_F(GuardTest, ErrorCodesHaveStableNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Parse), "LP_PARSE");
    EXPECT_STREQ(errorCodeName(ErrorCode::Verify), "LP_VERIFY");
    EXPECT_STREQ(errorCodeName(ErrorCode::Fuel), "LP_FUEL");
    EXPECT_STREQ(errorCodeName(ErrorCode::Deadline), "LP_DEADLINE");
    EXPECT_STREQ(errorCodeName(ErrorCode::Heap), "LP_HEAP");
    EXPECT_STREQ(errorCodeName(ErrorCode::Stack), "LP_STACK");
    EXPECT_STREQ(errorCodeName(ErrorCode::Trap), "LP_TRAP");
    EXPECT_STREQ(errorCodeName(ErrorCode::Io), "LP_IO");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "LP_INTERNAL");
}

TEST_F(GuardTest, OnlyIoAndDeadlineAreTransient)
{
    EXPECT_TRUE(errorIsTransient(ErrorCode::Io));
    EXPECT_TRUE(errorIsTransient(ErrorCode::Deadline));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Parse));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Verify));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Fuel));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Heap));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Stack));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Trap));
    EXPECT_FALSE(errorIsTransient(ErrorCode::Internal));
}

TEST_F(GuardTest, ErrorsRenderCodeAndAreCatchableAsFatalError)
{
    try {
        throw InterpreterTrap("division by zero");
    }
    catch (const FatalError &e) { // legacy catch sites keep working
        std::string what = e.what();
        EXPECT_NE(what.find("[LP_TRAP]"), std::string::npos) << what;
        EXPECT_NE(what.find("division by zero"), std::string::npos);
    }
}

TEST_F(GuardTest, NoteCellFillsIdentityWithoutClobbering)
{
    ErrorContext ctx;
    ctx.function = "kernel";
    InterpreterTrap e("boom", ctx);
    e.noteCell("176.gcc-like", "cint2000", "reduc1-dep2-fn2 HELIX");
    std::string what = e.what();
    EXPECT_NE(what.find("176.gcc-like"), std::string::npos) << what;
    EXPECT_NE(what.find("cint2000"), std::string::npos);
    EXPECT_NE(what.find("kernel"), std::string::npos);
    EXPECT_EQ(e.context().program, "176.gcc-like");

    // A second note (an outer handler) must not overwrite the identity
    // stamped closest to the failure.
    e.noteCell("other", "other-suite", "cfg");
    EXPECT_EQ(e.context().program, "176.gcc-like");
}

// ----------------------------------------------------------- run budget

TEST_F(GuardTest, ParseBudgetValueAcceptsPlainIntegers)
{
    EXPECT_EQ(guard::parseBudgetValue("--budget-instructions", "0"), 0u);
    EXPECT_EQ(guard::parseBudgetValue("--budget-wall-ms", "2500"), 2500u);
}

TEST_F(GuardTest, ParseBudgetValueRejectsGarbageWithParseError)
{
    for (const char *bad : {"", "ten", "-5", "1e9",
                            "99999999999999999999999"}) {
        try {
            guard::parseBudgetValue("--budget-heap-bytes", bad);
            FAIL() << "accepted: " << bad;
        }
        catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Parse) << bad;
            EXPECT_NE(std::string(e.what()).find("--budget-heap-bytes"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST_F(GuardTest, BudgetOverrideWinsOverDefaults)
{
    guard::RunBudget b;
    b.maxInstructions = 1234;
    b.maxWallMs = 9;
    guard::setBudgetOverride(b);
    EXPECT_EQ(guard::defaultBudget(), b);
    guard::clearBudgetOverride();
    EXPECT_EQ(guard::defaultBudget().maxWallMs, 0u);
}

TEST_F(GuardTest, FuelExhaustionNamesFunctionAndCounts)
{
    auto mod = test::buildSaxpy(1000);
    interp::Machine m(*mod);
    guard::RunBudget b;
    b.maxInstructions = 100; // saxpy(1000) needs far more
    m.setBudget(b);
    try {
        m.run();
        FAIL() << "expected ResourceExhausted";
    }
    catch (const ResourceExhausted &e) {
        EXPECT_EQ(e.code(), ErrorCode::Fuel);
        std::string what = e.what();
        EXPECT_NE(what.find("[LP_FUEL]"), std::string::npos) << what;
        EXPECT_NE(what.find("@main"), std::string::npos) << what;
        EXPECT_NE(what.find("budget 100"), std::string::npos) << what;
        EXPECT_FALSE(e.context().function.empty());
    }
}

TEST_F(GuardTest, WallClockDeadlineAborts)
{
    auto mod = test::buildSaxpy(2'000'000);
    interp::Machine m(*mod);
    guard::RunBudget b;
    b.maxInstructions = 0; // unlimited fuel: isolate the deadline arm
    b.maxWallMs = 1;
    m.setBudget(b);
    try {
        m.run();
        FAIL() << "expected ResourceExhausted";
    }
    catch (const ResourceExhausted &e) {
        EXPECT_EQ(e.code(), ErrorCode::Deadline);
        EXPECT_NE(std::string(e.what()).find("wall-clock"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(GuardTest, HeapCapIsEnforcedByMemory)
{
    interp::Memory mem;
    mem.setHeapLimit(1024);
    EXPECT_NO_THROW(mem.allocHeap(512));
    try {
        mem.allocHeap(4096);
        FAIL() << "expected ResourceExhausted";
    }
    catch (const ResourceExhausted &e) {
        EXPECT_EQ(e.code(), ErrorCode::Heap);
        EXPECT_NE(std::string(e.what()).find("heap budget"),
                  std::string::npos);
    }
    // Uncapped (0) keeps the historical segment-sized behavior.
    mem.setHeapLimit(0);
    EXPECT_NO_THROW(mem.allocHeap(4096));
}

// ------------------------------------------------------ fault injection

TEST_F(GuardTest, FaultTripsOnNthHitThenStaysPast)
{
    guard::setFault("interp", 2);

    auto mod = test::buildSaxpy(8);
    interp::Machine first(*mod);
    EXPECT_NO_THROW(first.run()); // hit 1: passes

    interp::Machine second(*mod);
    EXPECT_THROW(second.run(), InterpreterTrap); // hit 2: trips

    // The counter moved past nth: the retry of the same unit succeeds.
    interp::Machine third(*mod);
    EXPECT_NO_THROW(third.run());
    EXPECT_EQ(guard::faultSiteHits("interp"), 3u);
}

TEST_F(GuardTest, FaultSitesThrowTheirNaturalCategory)
{
    guard::setFault("parser", 1);
    try {
        ir::parseModule("module m\nfunc i64 @main() {\n  entry:\n"
                        "    ret 0\n}\n");
        FAIL() << "expected ParseError";
    }
    catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Parse);
        EXPECT_NE(std::string(e.what()).find("injected"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(GuardTest, UnknownFaultSiteDisarms)
{
    guard::setFault("no-such-site", 3);
    auto mod = test::buildSaxpy(8);
    interp::Machine m(*mod);
    EXPECT_NO_THROW(m.run());
}

// ---------------------------------------------------- quarantine, retry

TEST_F(GuardTest, GuardedRunPassesThroughSuccess)
{
    int calls = 0;
    guard::RunVerdict v = guard::guardedRun("unit", [&] { ++calls; });
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(v.attempts, 1);
    EXPECT_EQ(calls, 1);
}

TEST_F(GuardTest, TransientFailureIsRetriedAndSucceeds)
{
    guard::setFault("io", 1);
    guard::GuardPolicy policy;
    policy.backoffBaseMs = 0; // no sleeping in tests
    int calls = 0;
    guard::RunVerdict v = guard::guardedRun(
        "unit",
        [&] {
            ++calls;
            guard::faultPoint("io"); // trips once, then passes
        },
        policy);
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(v.attempts, 2);
    EXPECT_EQ(calls, 2);
}

TEST_F(GuardTest, DeterministicFailureQuarantinesImmediately)
{
    int calls = 0;
    guard::RunVerdict v = guard::guardedRun("unit", [&] {
        ++calls;
        throw VerifyError("bad module");
    });
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.attempts, 1); // no retry for deterministic categories
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(v.code, ErrorCode::Verify);
    EXPECT_STREQ(v.codeName(), "LP_VERIFY");
    EXPECT_NE(v.message.find("bad module"), std::string::npos);
}

TEST_F(GuardTest, TransientFailureExhaustsItsRetryBudget)
{
    guard::GuardPolicy policy;
    policy.maxRetries = 2;
    policy.backoffBaseMs = 0;
    int calls = 0;
    guard::RunVerdict v = guard::guardedRun(
        "unit",
        [&] {
            ++calls;
            throw IoError("disk on fire");
        },
        policy);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.attempts, 3); // 1 try + 2 retries
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(v.code, ErrorCode::Io);
}

TEST_F(GuardTest, StrictModeRethrowsTheOriginalError)
{
    guard::GuardPolicy policy;
    policy.keepGoing = false;
    policy.backoffBaseMs = 0;
    EXPECT_THROW(
        guard::guardedRun(
            "unit", [] { throw ParseError("nope", 7); }, policy),
        ParseError);
}

TEST_F(GuardTest, ForeignExceptionsBecomeInternal)
{
    guard::RunVerdict v = guard::guardedRun(
        "unit", [] { throw std::runtime_error("surprise"); });
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.code, ErrorCode::Internal);
    EXPECT_NE(v.message.find("surprise"), std::string::npos);
}

// ------------------------------------------------- keep-going sweeping

/** A program that parses and verifies but traps at run time. */
core::BenchProgram
trappingProgram()
{
    core::BenchProgram p;
    p.name = "trap.kernel";
    p.suite = "guard-suite";
    p.build = [] {
        return ir::parseModule("module trapdemo\n"
                               "func i64 @main() {\n"
                               "  entry:\n"
                               "    %z = add i64 0, 0\n"
                               "    %q = sdiv i64 1, %z\n"
                               "    ret %q\n"
                               "}\n");
    };
    return p;
}

core::BenchProgram
healthyProgram(const char *name)
{
    core::BenchProgram p;
    p.name = name;
    p.suite = "guard-suite";
    p.build = [] { return test::buildSaxpy(64); };
    return p;
}

TEST_F(GuardTest, KeepGoingSuiteQuarantinesOneCellOthersComplete)
{
    std::vector<core::BenchProgram> progs = {
        healthyProgram("ok.one"), trappingProgram(),
        healthyProgram("ok.two")};
    core::Study study(progs);

    rt::LPConfig cfg =
        rt::LPConfig::parse("reduc1-dep1-fn2", rt::ExecModel::Helix);
    core::Study::SuiteRunOptions opts;
    opts.keepGoing = true;
    opts.backoffBaseMs = 0;
    auto reports = study.runSuite("guard-suite", cfg, opts);

    ASSERT_EQ(reports.size(), 3u);
    EXPECT_TRUE(reports[0].ok());
    EXPECT_FALSE(reports[1].ok());
    EXPECT_TRUE(reports[2].ok());
    EXPECT_EQ(reports[1].status, rt::RunStatus::Failed);
    EXPECT_EQ(reports[1].errorCode, "LP_TRAP");
    EXPECT_EQ(reports[1].program, "trap.kernel");
    EXPECT_NE(reports[1].errorMessage.find("division by zero"),
              std::string::npos)
        << reports[1].errorMessage;

    // Geomeans aggregate the survivors only.
    EXPECT_GT(core::Study::geomeanSpeedup(reports), 0.0);

    // Strict mode over the same suite aborts, with the cell identity
    // stamped onto the error.
    try {
        study.runSuite("guard-suite", cfg, /*jobs=*/1);
        FAIL() << "expected InterpreterTrap";
    }
    catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Trap);
        EXPECT_EQ(e.context().program, "trap.kernel");
        EXPECT_EQ(e.context().suite, "guard-suite");
    }
}

TEST_F(GuardTest, KeepGoingStudyQuarantinesFailedPrepare)
{
    core::BenchProgram broken = healthyProgram("broken.selfcheck");
    broken.checkExpected = true;
    broken.expected = 424242; // saxpy does not return this

    std::vector<core::BenchProgram> progs = {healthyProgram("ok.one"),
                                             broken};
    core::StudyOptions opts;
    opts.keepGoing = true;
    core::Study study(progs, opts);

    EXPECT_EQ(study.programs().size(), 1u);
    ASSERT_EQ(study.prepareFailures().size(), 1u);
    EXPECT_EQ(study.prepareFailures()[0].program, "broken.selfcheck");
    EXPECT_FALSE(study.prepareFailures()[0].verdict.ok);

    // Strict preparation of the same set aborts instead.
    EXPECT_THROW(core::Study(progs, /*jobs=*/1u), FatalError);
}

// ----------------------------------------------------------- checkpoint

TEST_F(GuardTest, FailedReportJsonCarriesStatusAndCode)
{
    rt::ProgramReport rep;
    rep.program = "p";
    rep.status = rt::RunStatus::Failed;
    rep.errorCode = "LP_FUEL";
    rep.errorMessage = "out of fuel";
    rep.attempts = 2;
    obs::Json j = rep.toJson(/*withObsSnapshot=*/false);
    EXPECT_EQ(j.at("status").asString(), "failed");
    EXPECT_EQ(j.at("error_code").asString(), "LP_FUEL");
    EXPECT_EQ(j.at("error").asString(), "out of fuel");
    EXPECT_EQ(j.at("attempts").asInt(), 2);

    rt::ProgramReport ok;
    obs::Json jok = ok.toJson(/*withObsSnapshot=*/false);
    EXPECT_EQ(jok.at("status").asString(), "ok");
    EXPECT_EQ(jok.at("error_code").asString(), "");
    EXPECT_FALSE(jok.contains("error"));
}

TEST_F(GuardTest, CheckpointRoundTripsCellsByteIdentically)
{
    std::string path = ::testing::TempDir() + "lp_guard_ckpt.jsonl";
    std::remove(path.c_str());

    auto mod = test::buildSaxpy(64);
    interp::Machine m(*mod);
    m.run();
    rt::ProgramReport rep;
    rep.program = "saxpy";
    rep.serialCost = m.cost();
    rep.coverage = 0.123456789012345678; // exercise %.17g round-trip
    obs::Json cell = rep.toJson(/*withObsSnapshot=*/false);
    std::string key =
        guard::Checkpoint::cellKey("reduc1-dep1-fn2 HELIX", "s", "saxpy");

    {
        guard::Checkpoint ck(path, /*resume=*/false);
        EXPECT_EQ(ck.find(key), nullptr);
        ck.record(key, cell);
        ASSERT_NE(ck.find(key), nullptr);
    }
    {
        guard::Checkpoint resumed(path, /*resume=*/true);
        EXPECT_EQ(resumed.loadedCells(), 1u);
        const obs::Json *stored = resumed.find(key);
        ASSERT_NE(stored, nullptr);
        EXPECT_EQ(stored->dump(2), cell.dump(2));
    }
    std::remove(path.c_str());
}

TEST_F(GuardTest, CheckpointResumeSkipsTornFinalLine)
{
    std::string path = ::testing::TempDir() + "lp_guard_torn.jsonl";
    std::remove(path.c_str());
    {
        guard::Checkpoint ck(path, /*resume=*/false);
        ck.record("a|s|p|0", obs::Json::object());
    }
    {
        // Simulate a kill mid-write: a second line with no closing brace.
        std::ofstream out(path, std::ios::app);
        out << "{\"v\":1,\"key\":\"b|s|p|0\",\"cell\":{";
    }
    guard::Checkpoint resumed(path, /*resume=*/true);
    EXPECT_EQ(resumed.loadedCells(), 1u);
    EXPECT_NE(resumed.find("a|s|p|0"), nullptr);
    EXPECT_EQ(resumed.find("b|s|p|0"), nullptr);

    // The torn line must not poison *appending*: new cells still land.
    resumed.record("c|s|p|0", obs::Json::object());
    guard::Checkpoint again(path, /*resume=*/true);
    EXPECT_EQ(again.loadedCells(), 2u);
    std::remove(path.c_str());
}

TEST_F(GuardTest, CheckpointCountsSkippedLinesAndInteriorDamage)
{
    std::string path = ::testing::TempDir() + "lp_guard_damage.jsonl";
    std::remove(path.c_str());
    {
        // An interior line damaged after the fact, a good line, and a
        // torn final line: resume must keep the good cell, skip both
        // bad lines (counting them), and never throw or double-run.
        std::ofstream out(path, std::ios::trunc);
        out << "{\"v\":1,\"key\":\"broken" << '\n';
        out << "{\"v\":1,\"key\":\"good|s|p|0\",\"cell\":{}}" << '\n';
        out << "{\"v\":1,\"key\":\"torn|s|p|0\",\"cell\":{";
    }
    guard::Checkpoint ck(path, /*resume=*/true);
    EXPECT_EQ(ck.loadedCells(), 1u);
    EXPECT_EQ(ck.skippedLines(), 2u);
    EXPECT_NE(ck.find("good|s|p|0"), nullptr);
    EXPECT_EQ(ck.find("broken"), nullptr);
    EXPECT_EQ(ck.find("torn|s|p|0"), nullptr);
    std::remove(path.c_str());
}

TEST_F(GuardTest, CheckpointAbsorbMergesShardFiles)
{
    const std::string base = ::testing::TempDir() + "lp_guard_absorb";
    const std::string shard1 = base + ".shard1of2";
    const std::string shard2 = base + ".shard2of2";
    const std::string merged = base + ".merge";
    for (const std::string &p : {shard1, shard2, merged})
        std::remove(p.c_str());

    obs::Json cellA = obs::Json::object();
    cellA.set("status", "ok");
    obs::Json cellB = obs::Json::object();
    cellB.set("status", "failed");
    {
        guard::Checkpoint ck(shard1, /*resume=*/false);
        ck.record("a|s|p|0", cellA);
    }
    {
        guard::Checkpoint ck(shard2, /*resume=*/false);
        ck.record("b|s|p|0", cellB);
    }
    // Tear shard2's tail the way a killed shard process would.
    {
        std::ofstream out(shard2, std::ios::app);
        out << "{\"v\":1,\"key\":\"c|s|p|0\",\"cell\":{";
    }

    guard::Checkpoint ck(merged, /*resume=*/true);
    EXPECT_EQ(ck.absorb(shard1), 1u);
    EXPECT_EQ(ck.absorb(shard2), 1u); // torn line skipped, not loaded
    EXPECT_EQ(ck.skippedLines(), 1u);
    // A missing shard file is a warning and zero cells, not an error:
    // the merge re-runs that shard's cells itself.
    EXPECT_EQ(ck.absorb(base + ".shard9of9"), 0u);

    ASSERT_NE(ck.find("a|s|p|0"), nullptr);
    EXPECT_EQ(ck.find("a|s|p|0")->dump(), cellA.dump());
    ASSERT_NE(ck.find("b|s|p|0"), nullptr);
    EXPECT_EQ(ck.find("b|s|p|0")->dump(), cellB.dump());
    EXPECT_EQ(ck.find("c|s|p|0"), nullptr);

    // Absorbed cells live only in memory — the merge checkpoint file
    // records just the cells the merge itself ran (none here).
    guard::Checkpoint reopened(merged, /*resume=*/true);
    EXPECT_EQ(reopened.loadedCells(), 0u);

    for (const std::string &p : {shard1, shard2, merged})
        std::remove(p.c_str());
}

TEST_F(GuardTest, CheckpointDuplicateKeyLinesAreLastWriterWins)
{
    // The same cell recorded twice in one file — e.g. a cell re-run
    // across resume generations — must resolve deterministically: the
    // LAST complete line wins, and the key counts once.
    std::string path = ::testing::TempDir() + "lp_guard_dup.jsonl";
    std::remove(path.c_str());
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"v\":1,\"key\":\"a|s|p|0\",\"cell\":{\"gen\":1}}\n";
        out << "{\"v\":1,\"key\":\"a|s|p|0\",\"cell\":{\"gen\":2}}\n";
    }
    for (int round = 0; round < 2; ++round) { // deterministic on re-load
        guard::Checkpoint ck(path, /*resume=*/true);
        EXPECT_EQ(ck.loadedCells(), 1u);
        EXPECT_EQ(ck.skippedLines(), 0u);
        ASSERT_NE(ck.find("a|s|p|0"), nullptr);
        EXPECT_EQ(ck.find("a|s|p|0")->dump(), "{\"gen\":2}");
    }
    std::remove(path.c_str());
}

TEST_F(GuardTest, CheckpointAbsorbConflictsAreLastAbsorbWins)
{
    // Two shard files claim the same cell with different contents (a
    // re-sharded or re-run sweep).  The merge must resolve the conflict
    // by absorb order — last absorbed file wins — and report only NET
    // NEW keys in absorb()'s return value, so the caller's "cells
    // recovered" arithmetic stays honest.
    const std::string base = ::testing::TempDir() + "lp_guard_conflict";
    const std::string shard1 = base + ".shard1of2";
    const std::string shard2 = base + ".shard2of2";
    const std::string merged = base + ".merge";
    for (const std::string &p : {shard1, shard2, merged})
        std::remove(p.c_str());

    obs::Json cellA = obs::Json::object();
    cellA.set("status", "ok");
    obs::Json cellB = obs::Json::object();
    cellB.set("status", "failed");
    {
        guard::Checkpoint ck(shard1, /*resume=*/false);
        ck.record("a|s|p|0", cellA);
    }
    {
        guard::Checkpoint ck(shard2, /*resume=*/false);
        ck.record("a|s|p|0", cellB);
        ck.record("b|s|p|0", cellB);
    }

    {
        guard::Checkpoint ck(merged, /*resume=*/false);
        EXPECT_EQ(ck.absorb(shard1), 1u);
        // Only "b" is a new key; "a" is silently overwritten.
        EXPECT_EQ(ck.absorb(shard2), 1u);
        ASSERT_NE(ck.find("a|s|p|0"), nullptr);
        EXPECT_EQ(ck.find("a|s|p|0")->dump(), cellB.dump());
    }
    std::remove(merged.c_str());
    {
        // Opposite order, opposite winner — the policy is positional,
        // not content-dependent, hence deterministic for a fixed merge
        // command line.
        guard::Checkpoint ck(merged, /*resume=*/false);
        EXPECT_EQ(ck.absorb(shard2), 2u);
        EXPECT_EQ(ck.absorb(shard1), 0u); // no net new keys
        ASSERT_NE(ck.find("a|s|p|0"), nullptr);
        EXPECT_EQ(ck.find("a|s|p|0")->dump(), cellA.dump());
        ASSERT_NE(ck.find("b|s|p|0"), nullptr);
    }
    for (const std::string &p : {shard1, shard2, merged})
        std::remove(p.c_str());
}

TEST_F(GuardTest, CheckpointUnopenablePathIsIoError)
{
    try {
        guard::Checkpoint ck("/nonexistent-dir/nope/ck.jsonl",
                             /*resume=*/false);
        FAIL() << "expected IoError";
    }
    catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
}

} // namespace
} // namespace lp

/**
 * @file
 * Unit tests for the value predictors.
 */

#include <gtest/gtest.h>

#include "predict/predictor.hpp"

namespace lp::predict {
namespace {

TEST(LastValue, ConstantSequencePredicted)
{
    LastValuePredictor p;
    EXPECT_FALSE(p.predictAndTrain(7)); // cold
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(p.predictAndTrain(7));
}

TEST(LastValue, ChangingValueMissed)
{
    LastValuePredictor p;
    p.train(1);
    EXPECT_FALSE(p.predictAndTrain(2));
    EXPECT_FALSE(p.predictAndTrain(3));
}

TEST(Stride, LinearSequencePredicted)
{
    StridePredictor p;
    p.train(10);
    p.train(13); // stride 3 learned
    for (std::uint64_t v = 16; v < 100; v += 3)
        EXPECT_TRUE(p.predictAndTrain(v));
}

TEST(Stride, NegativeStride)
{
    StridePredictor p;
    p.train(100);
    p.train(92);
    for (std::uint64_t v = 84; v > 20; v -= 8)
        EXPECT_TRUE(p.predictAndTrain(v));
}

TEST(Stride, StrideChangeCausesOneMiss)
{
    StridePredictor p;
    p.train(0);
    p.train(1);
    EXPECT_TRUE(p.predictAndTrain(2));
    EXPECT_FALSE(p.predictAndTrain(10)); // stride changes 1 -> 8
    EXPECT_TRUE(p.predictAndTrain(18));  // new stride learned immediately
}

TEST(TwoDelta, OneOffJumpDoesNotDisturbStride)
{
    TwoDeltaStridePredictor p;
    p.train(0);
    p.train(4);
    EXPECT_TRUE(p.predictAndTrain(8));
    EXPECT_FALSE(p.predictAndTrain(100)); // one-off jump: miss
    // The plain stride predictor would now predict 192; 2-delta kept
    // stride 4 and predicts 104.
    EXPECT_TRUE(p.predictAndTrain(104));
    EXPECT_TRUE(p.predictAndTrain(108));
}

TEST(TwoDelta, PersistentNewStrideAdopted)
{
    TwoDeltaStridePredictor p;
    p.train(0);
    p.train(4);
    EXPECT_TRUE(p.predictAndTrain(8));
    EXPECT_FALSE(p.predictAndTrain(16)); // delta 8, first sighting
    EXPECT_FALSE(p.predictAndTrain(24)); // predicted 16+4; delta 8 twice
    EXPECT_TRUE(p.predictAndTrain(32));  // stride 8 now in force
}

TEST(Fcm, PeriodicPatternLearned)
{
    FcmPredictor p(2, 8);
    // Repeat the period-4 pattern until learned, then expect hits.
    const std::uint64_t pat[] = {5, 9, 2, 7};
    for (int warm = 0; warm < 3; ++warm)
        for (std::uint64_t v : pat)
            p.train(v);
    int hits = 0;
    for (int round = 0; round < 4; ++round)
        for (std::uint64_t v : pat)
            hits += p.predictAndTrain(v);
    EXPECT_EQ(hits, 16);
}

TEST(Fcm, RandomlikeSequenceMissed)
{
    FcmPredictor p;
    std::uint64_t x = 88172645463325252ULL;
    int hits = 0;
    for (int i = 0; i < 200; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        hits += p.predictAndTrain(x);
    }
    EXPECT_LE(hits, 2);
}

TEST(Hybrid, AnyCorrectCoversStrideAndPattern)
{
    HybridPredictor h;
    // Strided phase.
    int strideHits = 0;
    for (std::uint64_t v = 0; v < 50; v += 5)
        strideHits += h.predictAndTrain(v).anyCorrect;
    EXPECT_GE(strideHits, 7);

    // Constant phase: last-value takes over.
    int constHits = 0;
    for (int i = 0; i < 10; ++i)
        constHits += h.predictAndTrain(1234).anyCorrect;
    EXPECT_GE(constHits, 8);
}

TEST(Hybrid, ComponentOutcomesReported)
{
    HybridPredictor h;
    h.predictAndTrain(10);
    h.predictAndTrain(20);
    HybridOutcome out = h.predictAndTrain(30);
    EXPECT_TRUE(out.anyCorrect);
    EXPECT_TRUE(out.componentCorrect[1]); // stride
    EXPECT_FALSE(out.componentCorrect[0]); // last-value predicted 20
}

TEST(Hybrid, SelectorConvergesToGoodComponent)
{
    HybridPredictor h;
    // After a long strided run, the confidence selector must pick a
    // stride-family component and be correct.
    int tail = 0;
    for (std::uint64_t v = 0; v < 400; v += 3) {
        HybridOutcome out = h.predictAndTrain(v);
        if (v > 100)
            tail += out.selectedCorrect;
    }
    EXPECT_GE(tail, 90);
}

TEST(Hybrid, ComponentNames)
{
    HybridPredictor h;
    EXPECT_STREQ(h.componentName(0), "last-value");
    EXPECT_STREQ(h.componentName(1), "stride");
    EXPECT_STREQ(h.componentName(2), "2-delta");
    EXPECT_STREQ(h.componentName(3), "fcm");
}

} // namespace
} // namespace lp::predict

/**
 * @file
 * Unit tests for the compile-time analyses: dominators, loop forest,
 * SCEV, reduction descriptors, purity, SSA verification and the static
 * disjointness filter.
 */

#include <gtest/gtest.h>

#include "analysis/disjoint.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loop_info.hpp"
#include "analysis/purity.hpp"
#include "analysis/reduction.hpp"
#include "analysis/scev.hpp"
#include "analysis/ssa_verify.hpp"
#include "helpers.hpp"
#include "ir/builder.hpp"

namespace lp {
namespace {

using namespace ir;
using analysis::DominatorTree;
using analysis::Loop;
using analysis::LoopInfo;
using analysis::ScalarEvolution;

/** Find a block by name. */
const BasicBlock *
block(const Function &fn, const std::string &name)
{
    for (const auto &bb : fn.blocks())
        if (bb->name() == name)
            return bb.get();
    return nullptr;
}

TEST(Dominators, DiamondCfg)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    BasicBlock *entry = b.insertBlock();
    BasicBlock *left = b.newBlock("left");
    BasicBlock *right = b.newBlock("right");
    BasicBlock *join = b.newBlock("join");
    b.br(b.i64(1), left, right);
    b.setInsertPoint(left);
    b.jmp(join);
    b.setInsertPoint(right);
    b.jmp(join);
    b.setInsertPoint(join);
    b.ret(b.i64(0));
    mod.finalize();

    DominatorTree dt(*mod.mainFunction());
    EXPECT_EQ(dt.idom(entry), nullptr);
    EXPECT_EQ(dt.idom(left), entry);
    EXPECT_EQ(dt.idom(right), entry);
    EXPECT_EQ(dt.idom(join), entry);
    EXPECT_TRUE(dt.dominates(entry, join));
    EXPECT_FALSE(dt.dominates(left, join));
    EXPECT_TRUE(dt.dominates(join, join));
}

TEST(Dominators, UnreachableBlockExcluded)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    b.ret(b.i64(0));
    BasicBlock *dead = b.newBlock("dead");
    b.setInsertPoint(dead);
    b.ret(b.i64(1));
    mod.finalize();
    DominatorTree dt(*mod.mainFunction());
    EXPECT_FALSE(dt.reachable(dead));
    EXPECT_EQ(dt.rpo().size(), 1u);
}

TEST(LoopInfoTest, SaxpyHasThreeCanonicalTopLevelLoops)
{
    auto mod = test::buildSaxpy(16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    EXPECT_EQ(li.loops().size(), 3u);
    EXPECT_EQ(li.topLevel().size(), 3u);
    for (const auto &loop : li.loops()) {
        EXPECT_TRUE(loop->isCanonical()) << loop->label();
        EXPECT_EQ(loop->depth(), 1u);
        EXPECT_EQ(loop->latches().size(), 1u);
        ASSERT_NE(loop->preheader(), nullptr);
        EXPECT_EQ(loop->blocks().size(), 3u); // header, body, latch
    }
}

TEST(LoopInfoTest, NestedLoopsAreNested)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    CountedLoop outer(b, b.i64(0), b.i64(4), b.i64(1), "i");
    CountedLoop inner(b, b.i64(0), b.i64(4), b.i64(1), "j");
    inner.finish();
    outer.finish();
    b.ret(b.i64(0));
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ASSERT_EQ(li.loops().size(), 2u);
    ASSERT_EQ(li.topLevel().size(), 1u);
    Loop *out = li.topLevel()[0];
    ASSERT_EQ(out->subLoops().size(), 1u);
    Loop *in = out->subLoops()[0];
    EXPECT_EQ(in->parent(), out);
    EXPECT_EQ(in->depth(), 2u);
    EXPECT_TRUE(out->contains(in));
    EXPECT_FALSE(in->contains(out));
    EXPECT_TRUE(out->contains(in->header()));
}

TEST(LoopInfoTest, LoopForFindsInnermost)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    CountedLoop outer(b, b.i64(0), b.i64(4), b.i64(1), "i");
    CountedLoop inner(b, b.i64(0), b.i64(4), b.i64(1), "j");
    inner.finish();
    outer.finish();
    b.ret(b.i64(0));
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    const BasicBlock *innerBody = block(fn, "j.body");
    ASSERT_NE(innerBody, nullptr);
    EXPECT_EQ(li.loopFor(innerBody)->header()->name(), "j.hdr");
    const BasicBlock *outerLatch = block(fn, "i.latch");
    EXPECT_EQ(li.loopFor(outerLatch)->header()->name(), "i.hdr");
    EXPECT_EQ(li.loopFor(fn.entry()), nullptr);
}

TEST(Scev, SimpleIv)
{
    auto mod = test::buildSaxpy(16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);

    for (const auto &loop : li.loops()) {
        auto phis = loop->headerPhis();
        ASSERT_EQ(phis.size(), 1u);
        const analysis::Scev *s = se.phiEvolution(phis[0]);
        ASSERT_TRUE(s->isAddRec()) << loop->label();
        EXPECT_TRUE(s->lhs->isConst());
        EXPECT_EQ(s->lhs->konst, 0);
        EXPECT_TRUE(s->rhs->isConst());
        EXPECT_EQ(s->rhs->konst, 1);
        EXPECT_TRUE(se.isComputablePhi(phis[0]));
    }
}

TEST(Scev, MutualInductionVariable)
{
    // i = 0, 1, 2, ...; q = 0, 0+0, 0+0+1, ... (q += i): a second-order
    // recurrence {0,+,{0,+,1}} — computable (MIV).
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(10), b.i64(1), "i");
    Instruction *q = l.addRecurrence(Type::I64, b.i64(0), "q");
    Value *qNext = b.add(q, l.iv(), "q.next");
    l.setNext(q, qNext);
    l.finish();
    b.ret(q);
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    const Loop *loop = li.topLevel()[0];
    auto phis = loop->headerPhis();
    ASSERT_EQ(phis.size(), 2u);
    EXPECT_TRUE(se.isComputablePhi(phis[0]));
    EXPECT_TRUE(se.isComputablePhi(phis[1]));

    // Evaluate q at n: q(n) = sum_{k<n} k = n(n-1)/2.
    const analysis::Scev *s = se.phiEvolution(phis[1]);
    auto v = se.evaluateAt(s, 6);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 15);
    EXPECT_EQ(se.str(s).substr(0, 1), "{");
}

TEST(Scev, NonComputableDataDependentPhi)
{
    // acc' = acc + load(...): not an induction variable.
    auto mod = test::buildSumReduction(16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    const Loop *loop = nullptr;
    for (const auto &l : li.loops())
        if (l->header()->name() == "j.hdr")
            loop = l.get();
    ASSERT_NE(loop, nullptr);
    auto phis = loop->headerPhis();
    ASSERT_EQ(phis.size(), 2u); // j and acc
    EXPECT_TRUE(se.isComputablePhi(phis[0]));
    EXPECT_FALSE(se.isComputablePhi(phis[1]));
}

TEST(Scev, AffineAddressOfArrayWalk)
{
    auto mod = test::buildSaxpy(16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);

    // In the third loop, the store address is {c, +, 8}.
    const Loop *loop = nullptr;
    for (const auto &l : li.loops())
        if (l->header()->name() == "i.hdr")
            loop = l.get();
    ASSERT_NE(loop, nullptr);
    const Instruction *store = nullptr;
    for (const BasicBlock *bb : loop->blocks())
        for (const auto &instr : bb->instructions())
            if (instr->opcode() == Opcode::Store)
                store = instr.get();
    ASSERT_NE(store, nullptr);
    const analysis::Scev *s = se.scevOf(store->operand(1), loop);
    ASSERT_TRUE(s->isAddRec());
    ASSERT_TRUE(s->rhs->isConst());
    EXPECT_EQ(s->rhs->konst, 8);
}

TEST(Scev, LoopInvariance)
{
    auto mod = test::buildSaxpy(8);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    const Loop *loop = li.topLevel()[0];
    // Constants and globals are invariant; the loop's own phi is not.
    EXPECT_TRUE(se.isLoopInvariant(mod->constI64(3), loop));
    EXPECT_TRUE(se.isLoopInvariant(mod->globals()[0].get(), loop));
    EXPECT_FALSE(se.isLoopInvariant(loop->headerPhis()[0], loop));
}

TEST(Reduction, SumChainDetected)
{
    auto mod = test::buildSumReduction(16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    analysis::UseMap uses(fn);
    const Loop *loop = nullptr;
    for (const auto &l : li.loops())
        if (l->header()->name() == "j.hdr")
            loop = l.get();
    ASSERT_NE(loop, nullptr);
    auto phis = loop->headerPhis();
    auto red = analysis::matchReduction(phis[1], loop, uses);
    ASSERT_TRUE(red.has_value());
    EXPECT_EQ(red->kind, analysis::RecurKind::Sum);
    EXPECT_EQ(red->chain.size(), 1u);
}

TEST(Reduction, MinMaxDetected)
{
    Module mod("m");
    IRBuilder b(mod);
    Global *a = mod.addGlobal("a", 16 * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(16), b.i64(1), "i");
    Instruction *mn = l.addRecurrence(Type::I64, b.i64(1 << 30), "mn");
    Value *v = b.load(Type::I64, b.elem(a, l.iv()));
    Value *c = b.icmpLt(v, mn);
    Value *next = b.select(c, v, mn);
    l.setNext(mn, next);
    l.finish();
    b.ret(mn);
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    analysis::UseMap uses(fn);
    const Loop *loop = li.topLevel()[0];
    auto phis = loop->headerPhis();
    ASSERT_EQ(phis.size(), 2u);
    auto red = analysis::matchReduction(phis[1], loop, uses);
    ASSERT_TRUE(red.has_value());
    EXPECT_EQ(red->kind, analysis::RecurKind::SMin);
}

TEST(Reduction, EscapingAccumulatorRejected)
{
    // acc is also stored to memory each iteration: decoupling it would be
    // wrong, so the matcher must refuse.
    Module mod("m");
    IRBuilder b(mod);
    Global *a = mod.addGlobal("a", 16 * 8);
    Global *out = mod.addGlobal("out", 16 * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(16), b.i64(1), "i");
    Instruction *acc = l.addRecurrence(Type::I64, b.i64(0), "acc");
    Value *v = b.load(Type::I64, b.elem(a, l.iv()));
    Value *next = b.add(acc, v);
    b.store(next, b.elem(out, l.iv())); // escapes!
    l.setNext(acc, next);
    l.finish();
    b.ret(acc);
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    analysis::UseMap uses(fn);
    const Loop *loop = li.topLevel()[0];
    auto red = analysis::matchReduction(loop->headerPhis()[1], loop, uses);
    EXPECT_FALSE(red.has_value());
}

TEST(Purity, Classification)
{
    auto pureMod = test::buildLoopWithCalls(8, test::CalleeKind::Pure);
    analysis::PurityAnalysis pa(*pureMod);
    EXPECT_EQ(pa.purity(pureMod->findFunction("helper")),
              analysis::Purity::Pure);

    auto instrMod =
        test::buildLoopWithCalls(8, test::CalleeKind::Instrumented);
    analysis::PurityAnalysis pb(*instrMod);
    EXPECT_EQ(pb.purity(instrMod->findFunction("helper")),
              analysis::Purity::Impure); // writes through a pointer arg

    // main writes globals in every variant.
    EXPECT_EQ(pa.purity(pureMod->mainFunction()),
              analysis::Purity::Impure);
}

TEST(Purity, TransitivePropagation)
{
    Module mod("m");
    IRBuilder b(mod);
    Global *g = mod.addGlobal("g", 8);

    Function *leaf = b.createFunction("leaf", Type::I64);
    b.ret(b.load(Type::I64, g)); // reads a global: ReadOnly

    Function *mid = b.createFunction("mid", Type::I64);
    b.ret(b.call(leaf, {}));

    b.createFunction("main", Type::I64);
    b.ret(b.call(mid, {}));
    mod.finalize();

    analysis::PurityAnalysis pa(mod);
    EXPECT_EQ(pa.purity(leaf), analysis::Purity::ReadOnly);
    EXPECT_EQ(pa.purity(mid), analysis::Purity::ReadOnly);
    EXPECT_EQ(pa.purity(mod.mainFunction()), analysis::Purity::ReadOnly);
}

TEST(SsaVerify, AcceptsWellFormed)
{
    auto mod = test::buildPointerChase(16);
    ir::VerifyResult r = analysis::verifySSA(*mod);
    EXPECT_TRUE(r.ok()) << r.message();
}

TEST(SsaVerify, RejectsUseBeforeDef)
{
    Module mod("bad");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    BasicBlock *other = b.newBlock("other");
    // Build the definition in `other`, but use it in entry, which does not
    // dominate... actually is not dominated: entry -> other; use in entry.
    b.setInsertPoint(other);
    Value *def = b.add(b.i64(1), b.i64(2), "d");
    b.ret(def);
    b.setInsertPoint(mod.mainFunction()->entry());
    Value *use = b.mul(def, b.i64(3)); // def does not dominate this
    (void)use;
    b.jmp(other);
    mod.finalize();

    ir::VerifyResult r = analysis::verifySSA(mod);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("does not dominate"), std::string::npos);
}

TEST(Disjoint, SaxpyAccessesFiltered)
{
    auto mod = test::buildSaxpy(16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    analysis::UseMap uses(fn);
    analysis::DisjointFilter filter(fn, li, se, uses);

    for (const auto &loop : li.loops()) {
        // Every access in every saxpy loop is a stride-8 walk of its own
        // global: all filtered.
        for (const BasicBlock *bb : loop->blocks()) {
            for (const auto &instr : bb->instructions()) {
                if (instr->opcode() == Opcode::Load ||
                    instr->opcode() == Opcode::Store) {
                    EXPECT_TRUE(filter.untracked(loop.get(), instr.get()))
                        << loop->label();
                }
            }
        }
    }
}

TEST(Disjoint, HistogramUpdateNotFiltered)
{
    auto mod = test::buildHistogram(64, 16);
    const Function &fn = *mod->mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    analysis::UseMap uses(fn);
    analysis::DisjointFilter filter(fn, li, se, uses);

    const Loop *loop = li.topLevel()[0];
    bool sawTracked = false;
    for (const BasicBlock *bb : loop->blocks()) {
        for (const auto &instr : bb->instructions()) {
            if (instr->opcode() == Opcode::Load ||
                instr->opcode() == Opcode::Store) {
                if (!filter.untracked(loop, instr.get()))
                    sawTracked = true;
            }
        }
    }
    EXPECT_TRUE(sawTracked); // hist[slot] has no affine evolution
}

TEST(Disjoint, CrossIterationDistanceBlocksFilter)
{
    // a[i] and a[i+1] in the same loop: distance-1 dependence; neither
    // access may be filtered.
    Module mod("m");
    IRBuilder b(mod);
    Global *a = mod.addGlobal("a", 64 * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(63), b.i64(1), "i");
    Value *cur = b.load(Type::I64, b.elem(a, l.iv()));
    Value *nextAddr = b.elem(a, b.add(l.iv(), b.i64(1)));
    b.store(b.add(cur, b.i64(1)), nextAddr);
    l.finish();
    b.ret(b.i64(0));
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    analysis::UseMap uses(fn);
    analysis::DisjointFilter filter(fn, li, se, uses);
    const Loop *loop = li.topLevel()[0];
    EXPECT_EQ(filter.filteredCount(loop), 0u);
}

TEST(Disjoint, ReadOnlyTableFiltered)
{
    // Loads from a lookup table with a data-dependent index cannot be
    // affine, but a never-written base is still conflict-free.
    Module mod("m");
    IRBuilder b(mod);
    Global *table = mod.addGlobal("table", 64 * 8);
    Global *out = mod.addGlobal("out", 64 * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(64), b.i64(1), "i");
    Value *idx = b.and_(b.mul(l.iv(), b.i64(37)), b.i64(63));
    Value *t = b.load(Type::I64, b.elem(table, idx), "t");
    b.store(t, b.elem(out, l.iv()));
    l.finish();
    b.ret(b.i64(0));
    mod.finalize();

    const Function &fn = *mod.mainFunction();
    DominatorTree dt(fn);
    LoopInfo li(fn, dt);
    ScalarEvolution se(fn, li);
    analysis::UseMap uses(fn);
    analysis::DisjointFilter filter(fn, li, se, uses);
    const Loop *loop = li.topLevel()[0];
    // Both the table load and the out store are filtered.
    EXPECT_EQ(filter.filteredCount(loop), 2u);
}

} // namespace
} // namespace lp

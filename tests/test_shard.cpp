/**
 * @file
 * Sharded sweeps (core::runSweep with --shards semantics): the merge
 * of N shard runs must produce a report BYTE-identical to an unsharded
 * sweep — including after a simulated mid-shard crash (torn shard
 * checkpoint), with a shard missing entirely, and with the lint gate +
 * consistency oracle attached (docs/parallel_execution.md).
 *
 * Shape of the suite:
 *  - partitioning: shardCheckpointPath naming, every cell owned by
 *    exactly one shard, shard runs produce no report document;
 *  - differential: merged vs unsharded byte-identity, plain and under
 *    crash recovery and lint, and batched (decode-once) shards vs a
 *    --no-batch unsharded reference;
 *  - validation: the config errors runSweep promises (missing
 *    checkpoint, index out of range, --json on a shard run).
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "guard/checkpoint.hpp"
#include "helpers.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

std::vector<core::BenchProgram>
shardPrograms()
{
    auto mk = [](const char *name, auto builder) {
        core::BenchProgram p;
        p.name = name;
        p.suite = "shard-test";
        p.build = builder;
        return p;
    };
    return {
        mk("saxpy", [] { return test::buildSaxpy(64); }),
        mk("sum", [] { return test::buildSumReduction(64); }),
        mk("chase", [] { return test::buildPointerChase(48); }),
        mk("hist", [] { return test::buildHistogram(128, 8); }),
    };
}

/** A fresh checkpoint base path with all derived files removed. */
std::string
cleanBase(const char *name, unsigned shards)
{
    std::string base = ::testing::TempDir() + name;
    for (unsigned i = 1; i <= shards; ++i)
        std::remove(
            core::shardCheckpointPath(base, i, shards).c_str());
    std::remove((base + ".merge").c_str());
    return base;
}

/** Run shard @p i of @p n against @p base. */
core::SweepResult
runShard(unsigned i, unsigned n, const std::string &base,
         int lintMode = 0)
{
    core::SweepRequest req;
    req.shardIndex = i;
    req.shardCount = n;
    req.checkpointPath = base;
    req.lintMode = lintMode;
    return core::runSweep(shardPrograms(), req);
}

/** Merge @p n shards of @p base into a report document. */
core::SweepResult
runMerge(unsigned n, const std::string &base, int lintMode = 0)
{
    core::SweepRequest req;
    req.merge = true;
    req.shardCount = n;
    req.checkpointPath = base;
    req.wantJson = true;
    req.lintMode = lintMode;
    return core::runSweep(shardPrograms(), req);
}

/** The unsharded reference document. */
std::string
unshardedDump(int lintMode = 0)
{
    core::SweepRequest req;
    req.wantJson = true;
    req.lintMode = lintMode;
    core::SweepResult res = core::runSweep(shardPrograms(), req);
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_TRUE(res.hasDocument);
    return res.document.dump(2);
}

TEST(ShardSweep, ShardCheckpointPathEncodesIndexAndCount)
{
    EXPECT_EQ(core::shardCheckpointPath("ck.jsonl", 2, 8),
              "ck.jsonl.shard2of8");
}

TEST(ShardSweep, MergedReportIsByteIdenticalToUnsharded)
{
    const std::string reference = unshardedDump();
    const std::string base = cleanBase("lp_shard_plain.jsonl", 3);

    for (unsigned i = 1; i <= 3; ++i) {
        core::SweepResult r = runShard(i, 3, base);
        EXPECT_EQ(r.exitCode, 0);
        // A shard sees only its slice; it must not emit a document.
        EXPECT_FALSE(r.hasDocument);
        std::ifstream shardFile(
            core::shardCheckpointPath(base, i, 3));
        EXPECT_TRUE(shardFile.good());
    }

    core::SweepResult merged = runMerge(3, base);
    EXPECT_EQ(merged.exitCode, 0);
    ASSERT_TRUE(merged.hasDocument);
    EXPECT_EQ(merged.document.dump(2), reference);

    cleanBase("lp_shard_plain.jsonl", 3);
}

TEST(ShardSweep, EveryCellIsOwnedByExactlyOneShard)
{
    const std::string base = cleanBase("lp_shard_own.jsonl", 2);
    runShard(1, 2, base);
    runShard(2, 2, base);

    // The union of the shard checkpoints covers every runnable cell
    // exactly once (keys are unique per shard and disjoint across).
    std::size_t total = 0;
    std::vector<std::string> seen;
    for (unsigned i = 1; i <= 2; ++i) {
        guard::Checkpoint ck(core::shardCheckpointPath(base, i, 2),
                             /*resume=*/true);
        total += ck.loadedCells();
    }
    guard::Checkpoint both(base + ".union", /*resume=*/false);
    EXPECT_EQ(both.absorb(core::shardCheckpointPath(base, 1, 2)) +
                  both.absorb(core::shardCheckpointPath(base, 2, 2)),
              total)
        << "a cell key appeared in more than one shard";

    std::remove((base + ".union").c_str());
    cleanBase("lp_shard_own.jsonl", 2);
}

TEST(ShardSweep, MergeRecoversFromTornShardCheckpoint)
{
    const std::string reference = unshardedDump();
    const std::string base = cleanBase("lp_shard_torn.jsonl", 2);

    runShard(1, 2, base);
    runShard(2, 2, base);

    // Simulate shard 2 killed mid-append: drop its final record's tail
    // so the file ends in a torn line.  The merge must skip the torn
    // cell, re-run it, and still reproduce the reference bytes.
    const std::string shard2 = core::shardCheckpointPath(base, 2, 2);
    std::ifstream in(shard2, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 100u);
    {
        std::ofstream out(shard2, std::ios::trunc | std::ios::binary);
        out << bytes.substr(0, bytes.size() - 90);
    }

    core::SweepResult merged = runMerge(2, base);
    EXPECT_EQ(merged.exitCode, 0);
    ASSERT_TRUE(merged.hasDocument);
    EXPECT_EQ(merged.document.dump(2), reference);

    cleanBase("lp_shard_torn.jsonl", 2);
}

TEST(ShardSweep, MergeRecoversFromMissingShardAndIsResumable)
{
    const std::string reference = unshardedDump();
    const std::string base = cleanBase("lp_shard_miss.jsonl", 2);

    // Shard 2 never ran at all: the merge runs its cells itself...
    runShard(1, 2, base);
    core::SweepResult merged = runMerge(2, base);
    EXPECT_EQ(merged.exitCode, 0);
    ASSERT_TRUE(merged.hasDocument);
    EXPECT_EQ(merged.document.dump(2), reference);

    // ...and checkpoints them to its own file, so a second merge (the
    // crashed-and-relaunched case) resumes instead of re-running.
    guard::Checkpoint mergeCk(base + ".merge", /*resume=*/true);
    EXPECT_GT(mergeCk.loadedCells(), 0u);
    core::SweepResult again = runMerge(2, base);
    ASSERT_TRUE(again.hasDocument);
    EXPECT_EQ(again.document.dump(2), reference);

    cleanBase("lp_shard_miss.jsonl", 2);
}

TEST(ShardSweep, MergedLintSweepMatchesUnshardedIncludingOracle)
{
    const std::string reference = unshardedDump(/*lintMode=*/1);
    const std::string base = cleanBase("lp_shard_lint.jsonl", 2);

    for (unsigned i = 1; i <= 2; ++i)
        EXPECT_EQ(runShard(i, 2, base, /*lintMode=*/1).exitCode, 0);
    core::SweepResult merged = runMerge(2, base, /*lintMode=*/1);
    EXPECT_EQ(merged.exitCode, 0);
    ASSERT_TRUE(merged.hasDocument);
    EXPECT_EQ(merged.document.dump(2), reference);

    cleanBase("lp_shard_lint.jsonl", 2);
}

TEST(ShardSweep, BatchedShardedMergeMatchesNoBatchUnsharded)
{
    // Cross-axis byte-identity: each shard above runs with batched
    // replay on (the default), splitting its slice into decode-once
    // lane batches, while the reference sweep disables batching
    // entirely.  Sharding and batching together must change nothing
    // in the merged report.
    std::string reference;
    {
        core::SweepRequest req;
        req.wantJson = true;
        req.batchReplay = false;
        core::SweepResult res = core::runSweep(shardPrograms(), req);
        EXPECT_EQ(res.exitCode, 0);
        EXPECT_TRUE(res.hasDocument);
        reference = res.document.dump(2);
    }

    const std::string base = cleanBase("lp_shard_batch.jsonl", 3);
    for (unsigned i = 1; i <= 3; ++i)
        EXPECT_EQ(runShard(i, 3, base).exitCode, 0);
    core::SweepResult merged = runMerge(3, base);
    EXPECT_EQ(merged.exitCode, 0);
    ASSERT_TRUE(merged.hasDocument);
    EXPECT_EQ(merged.document.dump(2), reference);

    cleanBase("lp_shard_batch.jsonl", 3);
}

TEST(ShardSweep, InvalidShardRequestsAreConfigErrors)
{
    const auto progs = shardPrograms();

    core::SweepRequest noCkpt;
    noCkpt.shardIndex = 1;
    noCkpt.shardCount = 2;
    EXPECT_THROW(core::runSweep(progs, noCkpt), FatalError);

    core::SweepRequest outOfRange;
    outOfRange.shardIndex = 3;
    outOfRange.shardCount = 2;
    outOfRange.checkpointPath = ::testing::TempDir() + "x.jsonl";
    EXPECT_THROW(core::runSweep(progs, outOfRange), FatalError);

    core::SweepRequest shardJson;
    shardJson.shardIndex = 1;
    shardJson.shardCount = 2;
    shardJson.checkpointPath = ::testing::TempDir() + "x.jsonl";
    shardJson.wantJson = true;
    EXPECT_THROW(core::runSweep(progs, shardJson), FatalError);

    core::SweepRequest both;
    both.shardIndex = 1;
    both.shardCount = 2;
    both.merge = true;
    both.checkpointPath = ::testing::TempDir() + "x.jsonl";
    EXPECT_THROW(core::runSweep(progs, both), FatalError);
}

} // namespace
} // namespace lp

#include "helpers.hpp"

#include "support/error.hpp"

namespace lp::test {

using namespace lp::ir;

std::unique_ptr<Module>
buildSaxpy(std::int64_t n)
{
    auto mod = std::make_unique<Module>("saxpy");
    IRBuilder b(*mod);
    Global *a = mod->addGlobal("a", n * 8);
    Global *bArr = mod->addGlobal("b", n * 8);
    Global *c = mod->addGlobal("c", n * 8);

    b.createFunction("main", Type::I64);
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "ia");
        b.store(l.iv(), b.elem(a, l.iv()));
        l.finish();
    }
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "ib");
        b.store(b.mul(l.iv(), b.i64(2)), b.elem(bArr, l.iv()));
        l.finish();
    }
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
        Value *av = b.load(Type::I64, b.elem(a, l.iv()));
        Value *bv = b.load(Type::I64, b.elem(bArr, l.iv()));
        b.store(b.add(b.mul(av, b.i64(3)), bv), b.elem(c, l.iv()));
        l.finish();
    }
    Value *last = b.load(Type::I64, b.elem(c, b.i64(n - 1)));
    b.ret(last);
    mod->finalize();
    return mod;
}

std::unique_ptr<Module>
buildSumReduction(std::int64_t n)
{
    auto mod = std::make_unique<Module>("sum");
    IRBuilder b(*mod);
    Global *a = mod->addGlobal("a", n * 8);

    b.createFunction("main", Type::I64);
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
        b.store(l.iv(), b.elem(a, l.iv()));
        l.finish();
    }
    Value *result;
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "j");
        Instruction *acc = l.addRecurrence(Type::I64, b.i64(0), "acc");
        Value *av = b.load(Type::I64, b.elem(a, l.iv()));
        Value *next = b.add(acc, av, "acc.next");
        l.setNext(acc, next);
        l.finish();
        result = acc; // post-loop use of the phi (final value semantics
                      // are approximated by the phi's last resolution)
    }
    b.ret(result);
    mod->finalize();
    return mod;
}

namespace {

/** Shared list-walk builder; @p shuffled permutes the threading order. */
std::unique_ptr<Module>
buildChase(std::int64_t n, bool shuffled)
{
    // Node i occupies arena[2*i] (payload) and arena[2*i+1] (next ptr).
    auto mod = std::make_unique<Module>(shuffled ? "chase-shuffled"
                                                 : "chase");
    IRBuilder b(*mod);
    Global *arena = mod->addGlobal("arena", 2 * n * 8);

    b.createFunction("main", Type::I64);

    // Threading order: identity, or a multiply-xorshift bijection over
    // [0, n) (n must be a power of two in that case).  The xor step makes
    // the walk order non-affine, defeating stride predictors.
    lp::panicIf(shuffled && (n & (n - 1)) != 0,
                "shuffled chase requires power-of-two n");
    std::int64_t mask = n - 1;
    auto order = [&](Value *i) -> Value * {
        if (!shuffled)
            return i;
        Value *x = b.and_(b.mul(i, b.i64(2654435761LL)), b.i64(mask));
        return b.and_(b.xor_(x, b.ashr(x, b.i64(5))), b.i64(mask));
    };

    {
        // Link node order(i) -> node order(i+1); last node gets null.
        CountedLoop l(b, b.i64(0), b.i64(n - 1), b.i64(1), "init");
        Value *cur = order(l.iv());
        Value *nxt = order(b.add(l.iv(), b.i64(1)));
        Value *curNode = b.elem(arena, b.mul(cur, b.i64(2)));
        Value *nxtNode = b.elem(arena, b.mul(nxt, b.i64(2)));
        b.store(cur, curNode); // payload
        b.store(nxtNode, b.ptradd(curNode, b.i64(8))); // next pointer
        l.finish();
    }
    {
        // Terminate the list and set the last payload.
        Value *lastIdx = order(b.i64(n - 1));
        Value *lastNode = b.elem(arena, b.mul(lastIdx, b.i64(2)));
        b.store(lastIdx, lastNode);
        b.store(mod->constNullPtr(), b.ptradd(lastNode, b.i64(8)));
    }

    // Walk: while (p) { next = p->next; acc2 = work(p->val); p = next }.
    // The next-pointer load is the FIRST thing in the body, so the
    // producer offset of the carried pointer is small.
    Value *head = b.elem(arena, b.i64(0));
    WhileLoop walk(b, "walk");
    Instruction *p = walk.addRecurrence(Type::Ptr, head, "p");
    Instruction *acc = walk.addRecurrence(Type::I64, b.i64(0), "acc");
    walk.beginCond();
    Value *cond = b.icmpNe(p, mod->constNullPtr());
    walk.beginBody(cond);
    Value *nxt = b.load(Type::Ptr, b.ptradd(p, b.i64(8)), "nxt");
    Value *val = b.load(Type::I64, p, "val");
    // Some per-node work to give the iteration a body.
    Value *w = val;
    for (int r = 0; r < 6; ++r)
        w = b.add(b.mul(w, b.i64(3)), b.i64(r));
    Value *accNext = b.add(acc, w, "acc.next");
    walk.setNext(p, nxt);
    walk.setNext(acc, accNext);
    walk.finish();

    b.ret(acc);
    mod->finalize();
    return mod;
}

} // namespace

std::unique_ptr<Module>
buildPointerChase(std::int64_t n)
{
    return buildChase(n, false);
}

std::unique_ptr<Module>
buildPointerChaseShuffled(std::int64_t n)
{
    return buildChase(n, true);
}

std::unique_ptr<Module>
buildHistogram(std::int64_t n, std::int64_t buckets)
{
    auto mod = std::make_unique<Module>("histogram");
    IRBuilder b(*mod);
    Global *hist = mod->addGlobal("hist", buckets * 8);

    b.createFunction("main", Type::I64);
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
        // key = (i * 2654435761) >> 8, a fixed scramble of the index —
        // computable-free of the bucket array, but the bucket addresses
        // collide dynamically.
        Value *key = b.ashr(b.mul(l.iv(), b.i64(2654435761LL)), b.i64(8));
        Value *slot = b.srem(key, b.i64(buckets));
        Value *addr = b.elem(hist, slot);
        Value *old = b.load(Type::I64, addr);
        b.store(b.add(old, b.i64(1)), addr);
        l.finish();
    }
    b.ret(b.load(Type::I64, b.elem(hist, b.i64(0))));
    mod->finalize();
    return mod;
}

std::unique_ptr<Module>
buildLoopWithCalls(std::int64_t n, CalleeKind kind)
{
    auto mod = std::make_unique<Module>("loop-with-calls");
    IRBuilder b(*mod);
    interp::Stdlib lib = interp::registerStdlib(*mod);
    Global *in = mod->addGlobal("in", n * 8);
    Global *out = mod->addGlobal("out", n * 8);

    // The helper.
    Function *helper = nullptr;
    switch (kind) {
      case CalleeKind::Pure: {
        helper = b.createFunction("helper", Type::I64,
                                  {{Type::I64, "x"}});
        Value *x = helper->args()[0].get();
        Value *y = b.add(b.mul(x, x), b.i64(17));
        b.ret(y);
        break;
      }
      case CalleeKind::Instrumented: {
        helper = b.createFunction(
            "helper", Type::I64,
            {{Type::I64, "x"}, {Type::Ptr, "dst"}});
        Value *x = helper->args()[0].get();
        Value *dst = helper->args()[1].get();
        Value *y = b.add(b.mul(x, x), b.i64(17));
        b.store(y, dst);
        b.ret(y);
        break;
      }
      case CalleeKind::UnsafeExt: {
        helper = b.createFunction("helper", Type::I64,
                                  {{Type::I64, "x"}});
        Value *x = helper->args()[0].get();
        Value *r = b.callExt(lib.rand, {});
        b.ret(b.add(x, b.and_(r, b.i64(7))));
        break;
      }
    }

    b.createFunction("main", Type::I64);
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "init");
        b.store(l.iv(), b.elem(in, l.iv()));
        l.finish();
    }
    {
        CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
        Value *x = b.load(Type::I64, b.elem(in, l.iv()));
        Value *y;
        if (kind == CalleeKind::Instrumented)
            y = b.call(helper, {x, b.elem(out, l.iv())});
        else
            y = b.call(helper, {x});
        b.store(y, b.elem(out, l.iv()));
        l.finish();
    }
    b.ret(b.load(Type::I64, b.elem(out, b.i64(n - 1))));
    mod->finalize();
    return mod;
}

} // namespace lp::test

/**
 * @file
 * Unit tests for the execution-model cost algebra (paper Section III-B):
 * DOALL, Partial-DOALL phases + 80% rule, the HELIX closed form, the
 * single-sync DOACROSS ablation model, nested savings propagation, and
 * coverage accounting.  Programs are crafted so the expected costs can be
 * reasoned about by hand.
 */

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "ir/builder.hpp"

namespace lp {
namespace {

using namespace ir;
using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;
using rt::LoopReport;
using rt::ProgramReport;

LPConfig
cfg(const char *flags, ExecModel model)
{
    return LPConfig::parse(flags, model);
}

const LoopReport &
loop(const ProgramReport &rep, const std::string &substr)
{
    for (const auto &lr : rep.loops)
        if (lr.label.find(substr) != std::string::npos)
            return lr;
    throw std::runtime_error("loop not found: " + substr);
}

/** N iterations of fixed work, no dependencies at all. */
std::unique_ptr<Module>
buildIndependent(std::int64_t n, int work)
{
    auto mod = std::make_unique<Module>("independent");
    IRBuilder b(*mod);
    Global *out = mod->addGlobal("out", n * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
    Value *v = l.iv();
    for (int r = 0; r < work; ++r)
        v = b.add(b.mul(v, b.i64(3)), b.i64(r));
    b.store(v, b.elem(out, l.iv()));
    l.finish();
    b.ret(b.i64(0));
    mod->finalize();
    return mod;
}

/**
 * N iterations; every iteration loads then stores one shared cell, with
 * @p pre instructions before the load and @p mid instructions between
 * load and store.  Every iteration conflicts with its predecessor at
 * distance 1; the HELIX delta is the store-to-load window (~mid + 1).
 */
std::unique_ptr<Module>
buildSharedCell(std::int64_t n, int pre, int mid, int post)
{
    auto mod = std::make_unique<Module>("shared-cell");
    IRBuilder b(*mod);
    Global *cell = mod->addGlobal("cell", 8);
    Global *out = mod->addGlobal("out", n * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
    Value *v = l.iv();
    for (int r = 0; r < pre; ++r)
        v = b.add(v, b.i64(1));
    Value *c = b.load(Type::I64, b.elem(cell, b.i64(0)));
    Value *w = b.add(c, v);
    for (int r = 0; r < mid; ++r)
        w = b.add(w, b.i64(1));
    b.store(w, b.elem(cell, b.i64(0)));
    Value *x = w;
    for (int r = 0; r < post; ++r)
        x = b.add(x, b.i64(1));
    b.store(x, b.elem(out, l.iv()));
    l.finish();
    b.ret(b.i64(0));
    mod->finalize();
    return mod;
}

/** One conflicting iteration pair (iter `at` reads what `at-1` wrote). */
std::unique_ptr<Module>
buildOneConflict(std::int64_t n, std::int64_t at, int work)
{
    auto mod = std::make_unique<Module>("one-conflict");
    IRBuilder b(*mod);
    Global *cell = mod->addGlobal("cell", 8);
    Global *out = mod->addGlobal("out", n * 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(n), b.i64(1), "i");
    Value *v = l.iv();
    for (int r = 0; r < work; ++r)
        v = b.add(b.mul(v, b.i64(3)), b.i64(1));
    Value *isW = b.icmpEq(l.iv(), b.i64(at - 1));
    BasicBlock *wr = b.newBlock("wr");
    BasicBlock *mid = b.newBlock("mid");
    b.br(isW, wr, mid);
    b.setInsertPoint(wr);
    b.store(v, b.elem(cell, b.i64(0)));
    b.jmp(mid);
    b.setInsertPoint(mid);
    Value *isR = b.icmpEq(l.iv(), b.i64(at));
    BasicBlock *rd = b.newBlock("rd");
    BasicBlock *cont = b.newBlock("cont");
    b.br(isR, rd, cont);
    b.setInsertPoint(rd);
    Value *got = b.load(Type::I64, b.elem(cell, b.i64(0)));
    b.store(got, b.elem(out, b.i64(0)));
    b.jmp(cont);
    b.setInsertPoint(cont);
    b.store(v, b.elem(out, l.iv()));
    l.finish();
    b.ret(b.i64(0));
    mod->finalize();
    return mod;
}

TEST(Models, DoallIndependentLoopCostsOneIteration)
{
    auto mod = buildIndependent(500, 10);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0", ExecModel::DoAll));
    const LoopReport &lr = loop(rep, "i.hdr");
    // Parallel cost must be on the order of one iteration.
    EXPECT_LE(lr.parallelCost, 3 * lr.serialCost / 500);
    EXPECT_EQ(lr.memConflicts, 0u);
    EXPECT_EQ(lr.serializedInstances, 0u);
}

TEST(Models, DoallSerializesOnSingleConflict)
{
    auto mod = buildOneConflict(200, 100, 8);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0", ExecModel::DoAll));
    const LoopReport &lr = loop(rep, "i.hdr");
    EXPECT_GE(lr.memConflicts, 1u);
    EXPECT_EQ(lr.parallelCost, lr.adjustedCost); // no gain at all
    EXPECT_EQ(lr.serializedInstances, 1u);
}

TEST(Models, PdoallPaysOnePhasePerConflict)
{
    auto mod = buildOneConflict(200, 100, 8);
    Loopapalooza lp(*mod);
    ProgramReport rep =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    const LoopReport &lr = loop(rep, "i.hdr");
    std::uint64_t perIter = lr.serialCost / 200;
    // Two phases: roughly two iteration costs (plus the tail).
    EXPECT_GE(lr.parallelCost, perIter);
    EXPECT_LE(lr.parallelCost, 4 * perIter);
    EXPECT_EQ(lr.conflictIterations, 1u);
    EXPECT_EQ(lr.serializedInstances, 0u);
}

TEST(Models, PdoallEightyPercentRule)
{
    // Every iteration conflicts: fraction 1.0 > 0.8 -> serial.
    auto mod = buildSharedCell(300, 2, 2, 2);
    Loopapalooza lp(*mod);
    ProgramReport rep =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    const LoopReport &lr = loop(rep, "i.hdr");
    EXPECT_EQ(lr.serializedInstances, 1u);
    EXPECT_EQ(lr.parallelCost, lr.adjustedCost);

    // Raising the threshold to 1.0 forces the phase algebra through;
    // every iteration is its own phase, so there is still no speedup —
    // but the loop is no longer *marked* sequential.
    LPConfig permissive = cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll);
    permissive.pdoallSerialThreshold = 1.0;
    ProgramReport rep2 = lp.run(permissive);
    const LoopReport &lr2 = loop(rep2, "i.hdr");
    EXPECT_EQ(lr2.serializedInstances, 0u);
    EXPECT_GE(lr2.conflictIterations, 298u);
}

TEST(Models, HelixClosedFormMatchesHandComputation)
{
    // Shared cell with mid=20 work units inside the load->store window.
    constexpr std::int64_t kN = 400;
    auto mod = buildSharedCell(kN, 4, 20, 30);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn2", ExecModel::Helix));
    const LoopReport &lr = loop(rep, "i.hdr");
    ASSERT_EQ(lr.serializedInstances, 0u);

    std::uint64_t iterCost = lr.serialCost / kN;
    // delta is the store-to-load window: mid + the adds around it,
    // i.e. strictly less than the iteration but more than `mid`.
    // parallel = iterSlowest + delta*N + tail.
    std::uint64_t deltaApprox = (lr.parallelCost - iterCost) / kN;
    EXPECT_GE(deltaApprox, 20u);
    EXPECT_LE(deltaApprox, 26u);
}

TEST(Models, HelixNearSerialWhenWindowSpansIteration)
{
    // Nearly all the iteration sits inside the dependency window
    // (mid >> pre+post): synchronization buys almost nothing, though the
    // formula still beats serial by the sliver outside the window.
    auto mod = buildSharedCell(300, 1, 60, 1);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn2", ExecModel::Helix));
    const LoopReport &lr = loop(rep, "i.hdr");
    EXPECT_LT(lr.speedup(), 1.3);
    EXPECT_GE(lr.speedup(), 1.0);
}

TEST(Models, HelixFallsBackToSerialWhenSyncTooExpensive)
{
    // The shared-cell window spans serial work that an inner DOALL loop
    // removes from the ADJUSTED iteration cost: delta (measured on the
    // serial clock) then exceeds the adjusted iteration, the closed form
    // is worse than serial, and the loop must fall back.
    constexpr std::int64_t kN = 100;
    auto mod = std::make_unique<Module>("fallback");
    IRBuilder b(*mod);
    Global *cell = mod->addGlobal("cell", 8);
    Global *out = mod->addGlobal("out", 64 * 8);
    b.createFunction("main", Type::I64);
    CountedLoop o(b, b.i64(0), b.i64(kN), b.i64(1), "o");
    Value *c = b.load(Type::I64, b.elem(cell, b.i64(0)));
    {
        // Inner independent loop INSIDE the dependency window.
        CountedLoop in(b, b.i64(0), b.i64(64), b.i64(1), "in");
        b.store(b.add(in.iv(), c), b.elem(out, in.iv()));
        in.finish();
    }
    b.store(b.add(c, b.i64(1)), b.elem(cell, b.i64(0)));
    o.finish();
    b.ret(b.i64(0));
    mod->finalize();

    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn2", ExecModel::Helix));
    const LoopReport &outer = loop(rep, "o.hdr");
    EXPECT_EQ(outer.serializedInstances, 1u);
    EXPECT_EQ(outer.parallelCost, outer.adjustedCost);
    // The inner loop still contributes its own savings.
    EXPECT_GT(rep.speedup(), 3.0);
}

TEST(Models, DoacrossNeverBeatsHelix)
{
    for (int mid : {2, 10, 30}) {
        auto mod = buildSharedCell(300, 5, mid, 20);
        Loopapalooza lp(*mod);
        LPConfig helix = cfg("reduc0-dep0-fn2", ExecModel::Helix);
        LPConfig doacross = helix;
        doacross.singleSyncDoacross = true;
        double sHelix = lp.run(helix).speedup();
        double sDoacross = lp.run(doacross).speedup();
        EXPECT_LE(sDoacross, sHelix * 1.0001) << "mid=" << mid;
    }
}

TEST(Models, DoacrossSingleWindowSpansAllLcds)
{
    // Two shared cells: one updated early, one late.  HELIX syncs each
    // separately (delta = the larger single window); DOACROSS must cover
    // from the FIRST consumer to the LAST producer, which is strictly
    // worse here.
    constexpr std::int64_t kN = 300;
    auto mod = std::make_unique<Module>("two-cells");
    IRBuilder b(*mod);
    Global *cellA = mod->addGlobal("cellA", 8);
    Global *cellB = mod->addGlobal("cellB", 8);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(kN), b.i64(1), "i");
    // Early pair: load A, +1, store A.
    Value *a = b.load(Type::I64, b.elem(cellA, b.i64(0)));
    b.store(b.add(a, b.i64(1)), b.elem(cellA, b.i64(0)));
    // 40 units of independent work.
    Value *v = l.iv();
    for (int r = 0; r < 40; ++r)
        v = b.add(v, b.i64(1));
    // Late pair: load B, combine, store B.
    Value *bb = b.load(Type::I64, b.elem(cellB, b.i64(0)));
    b.store(b.add(bb, v), b.elem(cellB, b.i64(0)));
    l.finish();
    b.ret(b.i64(0));
    mod->finalize();

    Loopapalooza lp(*mod);
    LPConfig helix = cfg("reduc0-dep0-fn2", ExecModel::Helix);
    LPConfig doacross = helix;
    doacross.singleSyncDoacross = true;
    ProgramReport repH = lp.run(helix);
    ProgramReport repD = lp.run(doacross);
    const LoopReport &lh = loop(repH, "i.hdr");
    const LoopReport &ld = loop(repD, "i.hdr");
    // HELIX: two small windows -> big win.  DOACROSS: one window from
    // the A-load (top) to the B-store (bottom) -> essentially serial.
    EXPECT_GT(lh.speedup(), 5.0);
    EXPECT_LT(ld.speedup(), 1.5);
}

TEST(Models, NestedSavingsPropagateThroughSerialOuter)
{
    // Outer loop carries an LCG (serial under dep0); inner loop is
    // independent.  The program must still speed up via the inner loop.
    constexpr std::int64_t kOuter = 20, kInner = 200;
    auto mod = std::make_unique<Module>("nested");
    IRBuilder b(*mod);
    Global *out = mod->addGlobal("out", kInner * 8);
    b.createFunction("main", Type::I64);
    CountedLoop o(b, b.i64(0), b.i64(kOuter), b.i64(1), "o");
    Instruction *lcg = o.addRecurrence(Type::I64, b.i64(7), "lcg");
    Value *lcgNext = b.add(b.mul(lcg, b.i64(6364136223846793005LL)),
                           b.i64(1442695040888963407LL), "lcg.next");
    o.setNext(lcg, lcgNext);
    CountedLoop in(b, b.i64(0), b.i64(kInner), b.i64(1), "in");
    Value *v = b.add(b.mul(in.iv(), b.i64(5)), lcg);
    b.store(v, b.elem(out, in.iv()));
    in.finish();
    o.finish();
    b.ret(b.i64(0));
    mod->finalize();

    Loopapalooza lp(*mod);
    ProgramReport rep =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    const LoopReport &outer = loop(rep, "o.hdr");
    const LoopReport &inner = loop(rep, "in.hdr");
    EXPECT_EQ(outer.staticReason, rt::SerialReason::RegisterLcd);
    EXPECT_EQ(inner.staticReason, rt::SerialReason::None);
    EXPECT_EQ(inner.instances, static_cast<std::uint64_t>(kOuter));
    // The outer loop's ADJUSTED cost subtracts the inner savings, and
    // the program speedup reflects them even though the outer is serial.
    EXPECT_LT(outer.adjustedCost, outer.serialCost / 5);
    EXPECT_GT(rep.speedup(), 5.0);
    // Coverage counts the inner instances (most of the program).
    EXPECT_GT(rep.coverage, 0.7);
}

TEST(Models, CoverageNeverExceedsOne)
{
    auto mod = buildIndependent(300, 6);
    Loopapalooza lp(*mod);
    for (ExecModel m : {ExecModel::DoAll, ExecModel::PartialDoAll,
                        ExecModel::Helix}) {
        ProgramReport rep = lp.run(cfg("reduc0-dep0-fn2", m));
        EXPECT_GE(rep.coverage, 0.0);
        EXPECT_LE(rep.coverage, 1.0);
    }
}

TEST(Models, SerializedLoopGetsZeroCoverage)
{
    auto mod = buildSharedCell(300, 2, 2, 2); // 100% conflicting
    Loopapalooza lp(*mod);
    ProgramReport rep =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    EXPECT_LT(rep.coverage, 0.05);
}

TEST(Models, ReportPrintIsWellFormed)
{
    auto mod = buildIndependent(50, 4);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0", ExecModel::DoAll));
    std::ostringstream os;
    rep.print(os, true);
    std::string s = os.str();
    EXPECT_NE(s.find("speedup"), std::string::npos);
    EXPECT_NE(s.find("i.hdr"), std::string::npos);
    EXPECT_NE(s.find("DOALL"), std::string::npos);
}

} // namespace
} // namespace lp

/**
 * @file
 * Tests for the lp::exec work-pool layer and the thread-safety
 * guarantees it leans on: parallelFor semantics (ordering, exception
 * capture, jobs resolution), concurrent metrics recording, and the
 * headline determinism contract — a parallel suite sweep produces
 * reports identical to a serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/study.hpp"
#include "exec/pool.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "rt/plan.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using exec::parallelFor;
using exec::ThreadPool;

// ----------------------------------------------------------- parallelFor

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        std::vector<std::atomic<int>> hits(100);
        parallelFor(
            hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
            jobs);
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs "
                                         << jobs;
    }
}

TEST(ParallelFor, ResultOrderIsIndexOrder)
{
    // Callers index their output by i; whatever the scheduling, the
    // output vector must equal the serial one.
    auto sweep = [](unsigned jobs) {
        std::vector<std::uint64_t> out(257);
        parallelFor(
            out.size(), [&](std::size_t i) { out[i] = i * i + 7; }, jobs);
        return out;
    };
    EXPECT_EQ(sweep(1), sweep(4));
}

TEST(ParallelFor, ZeroAndOneElementRunInline)
{
    std::atomic<int> calls{0};
    parallelFor(0, [&](std::size_t) { calls.fetch_add(1); }, 8);
    EXPECT_EQ(calls.load(), 0);

    std::thread::id caller = std::this_thread::get_id();
    parallelFor(
        1,
        [&](std::size_t) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            calls.fetch_add(1);
        },
        8);
    EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, RethrowsLowestFailingIndex)
{
    for (unsigned jobs : {1u, 4u}) {
        try {
            parallelFor(
                64,
                [&](std::size_t i) {
                    if (i == 7 || i == 9)
                        throw std::runtime_error("boom " +
                                                 std::to_string(i));
                },
                jobs);
            FAIL() << "expected runtime_error (jobs " << jobs << ")";
        } catch (const std::runtime_error &e) {
            // Index 9 can only fail after 7 was already issued; the
            // lowest failing index wins deterministically.
            EXPECT_STREQ(e.what(), "boom 7") << "jobs " << jobs;
        }
    }
}

TEST(ParallelFor, StopsIssuingAfterFailure)
{
    std::atomic<int> ran{0};
    try {
        parallelFor(
            100'000,
            [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 0)
                    throw std::runtime_error("early");
            },
            4);
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &) {
    }
    // Already-started tasks finish, but the remaining iteration space
    // must be abandoned.
    EXPECT_LT(ran.load(), 100'000);
}

// -------------------------------------------------------- parallelForAll

TEST(ParallelForAll, RunsEveryIndexDespiteFailures)
{
    for (unsigned jobs : {1u, 4u}) {
        std::vector<std::atomic<int>> hits(64);
        auto errors = exec::parallelForAll(
            hits.size(),
            [&](std::size_t i) {
                hits[i].fetch_add(1);
                if (i % 5 == 0)
                    throw std::runtime_error("boom " + std::to_string(i));
            },
            jobs);
        ASSERT_EQ(errors.size(), hits.size());
        for (std::size_t i = 0; i < hits.size(); ++i) {
            // One poisoned index cancels nothing: every index ran.
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
            EXPECT_EQ(static_cast<bool>(errors[i]), i % 5 == 0)
                << "index " << i;
        }
        try {
            std::rethrow_exception(errors[5]);
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 5"); // slot i holds i's error
        }
    }
}

TEST(ParallelForAll, AllNullOnSuccessAndEmptyOnZero)
{
    EXPECT_TRUE(exec::parallelForAll(0, [](std::size_t) {}, 4).empty());
    auto errors =
        exec::parallelForAll(32, [](std::size_t) {}, 4);
    for (const std::exception_ptr &e : errors)
        EXPECT_FALSE(e);
}

TEST(ParallelFor, JobsResolution)
{
    EXPECT_GE(exec::resolveJobs(0), 1u); // 0 = all hardware threads
    EXPECT_EQ(exec::resolveJobs(3), 3u);

    exec::setJobsOverride(5);
    EXPECT_EQ(exec::defaultJobs(), 5u);
    exec::setJobsOverride(0);
    // With the override cleared, the default falls back to LP_JOBS or 1;
    // either way it is a positive worker count.
    EXPECT_GE(exec::defaultJobs(), 1u);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsPostedTasks)
{
    std::atomic<int> sum{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.workers(), 4u);
        for (int i = 1; i <= 100; ++i)
            pool.post([&sum, i] { sum.fetch_add(i); });
        pool.wait();
        EXPECT_EQ(sum.load(), 5050);
    }
}

TEST(ThreadPoolTest, WaitIsReusable)
{
    std::atomic<int> n{0};
    ThreadPool pool(2);
    pool.post([&] { n.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(n.load(), 1);
    pool.post([&] { n.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(n.load(), 2);
}

// -------------------------------------------------- concurrent metrics

TEST(ConcurrentMetrics, CounterTotalsMatchSerialSum)
{
    const bool was = obs::metricsOn();
    obs::setMetricsEnabled(true);
    obs::Counter &c = obs::Registry::instance().counter("test.exec.ctr");
    c.reset();

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 50'000;
    parallelFor(
        kThreads,
        [&](std::size_t) {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                c.add(2);
        },
        kThreads);

    EXPECT_EQ(c.value(), 2 * kThreads * kAddsPerThread);
    c.reset();
    obs::setMetricsEnabled(was);
}

TEST(ConcurrentMetrics, HistogramTotalsMatchSerialSum)
{
    const bool was = obs::metricsOn();
    obs::setMetricsEnabled(true);
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.exec.hist", {10, 100, 1000});
    h.reset();

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 10'000;
    parallelFor(
        kThreads,
        [&](std::size_t t) {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                h.record((t * kPerThread + i) % 2000);
        },
        kThreads);

    EXPECT_EQ(h.count(), kThreads * kPerThread);
    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    std::uint64_t bucketSum = std::accumulate(
        buckets.begin(), buckets.end(), std::uint64_t{0});
    EXPECT_EQ(bucketSum, h.count());
    h.reset();
    obs::setMetricsEnabled(was);
}

TEST(ConcurrentMetrics, RegistryLookupUnderContention)
{
    // Find-or-create from many threads must yield one counter per name
    // and lose no updates.
    const bool was = obs::metricsOn();
    obs::setMetricsEnabled(true);
    parallelFor(
        8,
        [&](std::size_t) {
            for (int i = 0; i < 1000; ++i)
                obs::Registry::instance()
                    .counter("test.exec.lookup" + std::to_string(i % 4))
                    .add(1);
        },
        8);
    std::uint64_t total = 0;
    for (int i = 0; i < 4; ++i) {
        obs::Counter &c = obs::Registry::instance().counter(
            "test.exec.lookup" + std::to_string(i));
        total += c.value();
        c.reset();
    }
    EXPECT_EQ(total, 8u * 1000u);
    obs::setMetricsEnabled(was);
}

TEST(ConcurrentMetrics, PhaseTimersFromWorkers)
{
    obs::PhaseTree::instance().reset();
    parallelFor(
        8,
        [&](std::size_t) {
            for (int i = 0; i < 200; ++i) {
                obs::ScopedPhase outer("worker-phase");
                obs::ScopedPhase inner("inner");
                inner.addInstructions(3);
            }
        },
        8);
    // 8 * 200 enters merged into one node per name; count is atomic.
    std::string json = obs::PhaseTree::instance().toJson().dump();
    EXPECT_NE(json.find("worker-phase"), std::string::npos);
    EXPECT_NE(json.find("1600"), std::string::npos) << json;
    obs::PhaseTree::instance().reset();
}

// ---------------------------------------------------- suite aggregation

TEST(StudyAggregation, GeomeanSpeedupClampsDegenerateReports)
{
    // A report whose serialCost is 0 has speedup() == 0; geomeanSpeedup
    // must clamp it (like geomeanCoverage's 0.1% floor) instead of
    // letting GeomeanAccum fatal on a non-positive sample.
    rt::ProgramReport healthy;
    healthy.serialCost = 1000;
    healthy.parallelCost = 250; // 4x
    rt::ProgramReport degenerate;
    degenerate.serialCost = 0;
    degenerate.parallelCost = 100; // 0x

    double g = 0.0;
    EXPECT_NO_THROW(
        g = core::Study::geomeanSpeedup({healthy, degenerate}));
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, 4.0); // the degenerate report depresses the mean

    // All-healthy inputs are untouched by the clamp.
    EXPECT_DOUBLE_EQ(core::Study::geomeanSpeedup({healthy, healthy}),
                     4.0);
}

// --------------------------------------------------------- determinism

std::vector<core::BenchProgram>
smallPrograms()
{
    auto mk = [](const char *name, auto builder) {
        core::BenchProgram p;
        p.name = name;
        p.suite = "exec-test";
        p.build = builder;
        return p;
    };
    return {
        mk("saxpy", [] { return test::buildSaxpy(64); }),
        mk("sum", [] { return test::buildSumReduction(64); }),
        mk("chase", [] { return test::buildPointerChase(48); }),
        mk("hist", [] { return test::buildHistogram(128, 8); }),
        mk("calls", [] {
            return test::buildLoopWithCalls(32,
                                            test::CalleeKind::UnsafeExt);
        }),
    };
}

/** One full sweep at @p jobs workers, dumped to a canonical string. */
std::string
sweepFingerprint(unsigned jobs)
{
    core::Study study(smallPrograms(), jobs);
    std::string out;
    const std::pair<const char *, rt::ExecModel> points[] = {
        {"reduc0-dep0-fn0", rt::ExecModel::DoAll},
        {"reduc1-dep0-fn0", rt::ExecModel::DoAll},
        {"reduc0-dep0-fn0", rt::ExecModel::PartialDoAll},
        {"reduc1-dep2-fn2", rt::ExecModel::PartialDoAll},
        {"reduc0-dep0-fn2", rt::ExecModel::Helix},
        {"reduc1-dep1-fn2", rt::ExecModel::Helix},
    };
    for (const auto &[flags, model] : points) {
        rt::LPConfig cfg = rt::LPConfig::parse(flags, model);
        for (const rt::ProgramReport &rep :
             study.runSuite("exec-test", cfg, jobs))
            out += rep.toJson(/*withObsSnapshot=*/false).dump();
        out += '\n';
    }
    return out;
}

TEST(Determinism, ParallelSweepMatchesSerialByteForByte)
{
    std::string serial = sweepFingerprint(1);
    std::string parallel = sweepFingerprint(4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(Determinism, RepeatedParallelSweepsAgree)
{
    // Run-to-run: stateful externals (rand) are copied per Machine, so
    // results cannot depend on scheduling order across repetitions.
    EXPECT_EQ(sweepFingerprint(4), sweepFingerprint(4));
}

TEST(Determinism, StudyPreparationParallelMatchesSerial)
{
    core::Study serial(smallPrograms(), 1);
    core::Study parallel(smallPrograms(), 4);
    ASSERT_EQ(serial.programs().size(), parallel.programs().size());
    rt::LPConfig cfg =
        rt::LPConfig::parse("reduc1-dep1-fn2", rt::ExecModel::Helix);
    for (std::size_t i = 0; i < serial.programs().size(); ++i) {
        EXPECT_EQ(serial.programs()[i]->name(),
                  parallel.programs()[i]->name());
        EXPECT_EQ(serial.programs()[i]->run(cfg).toJson(false).dump(),
                  parallel.programs()[i]->run(cfg).toJson(false).dump());
    }
}

TEST(Determinism, ConcurrentRunsOverOneDriverAgree)
{
    // Many Machines over one module + one plan, all at once: the module
    // must stay immutable (globals get per-Machine addresses, externals
    // per-Machine impl copies).
    auto mod =
        test::buildLoopWithCalls(64, test::CalleeKind::UnsafeExt);
    core::Loopapalooza driver(*mod);
    rt::LPConfig cfg =
        rt::LPConfig::parse("reduc0-dep2-fn2", rt::ExecModel::Helix);

    std::vector<std::string> dumps(16);
    parallelFor(
        dumps.size(),
        [&](std::size_t i) {
            dumps[i] = driver.run(cfg).toJson(false).dump();
        },
        8);
    for (std::size_t i = 1; i < dumps.size(); ++i)
        EXPECT_EQ(dumps[0], dumps[i]) << "run " << i << " diverged";
}

} // namespace
} // namespace lp

/**
 * @file
 * Tests for the per-loop program-dependence graph, the SCC
 * condensation, and the static parallelism verdict lattice.
 */

#include <fstream>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "helpers.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "obs/log.hpp"

namespace lp {
namespace {

using analysis::DepEdge;
using analysis::DepKind;
using analysis::LoopPdg;
using analysis::VerdictKind;

class PdgTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::setLogLevel(obs::Level::Error); }
};

// ------------------------------------------------------------------ scc

TEST_F(PdgTest, SccCondensationFindsCyclesAndTopoOrder)
{
    // 0 -> 1 -> 2 -> 0 (cycle), 1 -> 3, 3 -> 4, 4 -> 3 (cycle),
    // 5 isolated, 6 -> 6 (self loop).
    std::vector<std::vector<unsigned>> succ(7);
    succ[0] = {1};
    succ[1] = {2, 3};
    succ[2] = {0};
    succ[3] = {4};
    succ[4] = {3};
    succ[6] = {6};
    analysis::SccGraph g(succ);

    EXPECT_EQ(g.numNodes(), 7u);
    EXPECT_EQ(g.numSccs(), 4u);
    EXPECT_EQ(g.sccOf(0), g.sccOf(1));
    EXPECT_EQ(g.sccOf(0), g.sccOf(2));
    EXPECT_EQ(g.sccOf(3), g.sccOf(4));
    EXPECT_NE(g.sccOf(0), g.sccOf(3));
    EXPECT_TRUE(g.hasCycle(g.sccOf(0)));
    EXPECT_TRUE(g.hasCycle(g.sccOf(3)));
    EXPECT_FALSE(g.hasCycle(g.sccOf(5)));
    EXPECT_TRUE(g.hasCycle(g.sccOf(6))); // self loop

    // Condensation-DAG edges always go from lower to higher SCC id.
    EXPECT_LT(g.sccOf(0), g.sccOf(3));
    for (unsigned s = 0; s < g.numSccs(); ++s)
        for (unsigned t : g.dagSuccessors(s))
            EXPECT_LT(s, t);

    // Members are recorded exactly once each.
    unsigned total = 0;
    for (unsigned s = 0; s < g.numSccs(); ++s)
        total += static_cast<unsigned>(g.members(s).size());
    EXPECT_EQ(total, 7u);
}

TEST_F(PdgTest, SccHandlesEmptyAndDeepGraphs)
{
    analysis::SccGraph empty({});
    EXPECT_EQ(empty.numSccs(), 0u);

    // A 10k-node chain must not blow the stack (iterative Tarjan).
    std::vector<std::vector<unsigned>> chain(10000);
    for (unsigned i = 0; i + 1 < chain.size(); ++i)
        chain[i] = {i + 1};
    analysis::SccGraph g(chain);
    EXPECT_EQ(g.numSccs(), 10000u);
}

// ------------------------------------------------- per-loop PDG fixture

/** Analyses + one PDG per loop of one function, kept alive together. */
struct PdgBundle
{
    const ir::Function &fn;
    analysis::DominatorTree dt;
    analysis::LoopInfo li;
    analysis::UseMap uses;
    analysis::ScalarEvolution se;
    analysis::PurityAnalysis purity;
    std::vector<std::unique_ptr<LoopPdg>> pdgs;

    PdgBundle(const ir::Module &m, const ir::Function &f)
        : fn(f), dt(f), li(f, dt), uses(f), se(f, li), purity(m)
    {
        for (const auto &loop : li.loops())
            pdgs.push_back(std::make_unique<LoopPdg>(
                loop.get(), m, li, uses, se, purity));
    }

    /** The PDG of the loop whose header block is named @p header. */
    const LoopPdg &
    byHeader(const std::string &header) const
    {
        for (const auto &p : pdgs)
            if (p->loop()->header()->name() == header)
                return *p;
        throw std::runtime_error("no loop with header " + header);
    }
};

unsigned
countEdges(const LoopPdg &pdg, DepKind kind, bool carried, bool may)
{
    unsigned n = 0;
    for (const DepEdge &e : pdg.edges())
        if (e.kind == kind && e.carried == carried && e.may == may)
            ++n;
    return n;
}

// ------------------------------------------------------------- verdicts

TEST_F(PdgTest, DisjointStridedLoopIsDoAll)
{
    // b[i] = a[i] * 3 over distinct globals: no doomed edges at all.
    ir::Module mod("doall");
    ir::IRBuilder b(mod);
    auto *ga = mod.addGlobal("a", 64 * 8);
    auto *gb = mod.addGlobal("b", 64 * 8);
    b.createFunction("main", ir::Type::I64);
    ir::CountedLoop loop(b, b.i64(0), b.i64(64), b.i64(1), "i");
    auto *v = b.load(ir::Type::I64, b.elem(ga, loop.iv(), "lp"), "v");
    auto *v3 = b.mul(v, b.i64(3), "v3");
    b.store(v3, b.elem(gb, loop.iv(), "sp"));
    loop.finish();
    b.ret(b.i64(0));
    mod.finalize();

    PdgBundle bundle(mod, *mod.mainFunction());
    ASSERT_EQ(bundle.pdgs.size(), 1u);
    const LoopPdg &pdg = *bundle.pdgs[0];

    EXPECT_EQ(pdg.verdict().kind, VerdictKind::DoAll);
    EXPECT_TRUE(pdg.verdict().doomedEdges.empty());

    // The IV's carried register edge exists but is breakable.
    unsigned carriedReg = 0;
    for (const DepEdge &e : pdg.edges())
        if (e.kind == DepKind::Register && e.carried) {
            ++carriedReg;
            EXPECT_TRUE(e.breakable) << pdg.edgeStr(e);
        }
    EXPECT_EQ(carriedReg, 1u);
    // No cross-iteration memory edge: distinct identified objects.
    EXPECT_EQ(countEdges(pdg, DepKind::Memory, true, false), 0u);
    EXPECT_EQ(countEdges(pdg, DepKind::Memory, true, true), 0u);
    // The countable exit's carried control edges are all breakable.
    for (const DepEdge &e : pdg.edges()) {
        if (e.kind == DepKind::Control && e.carried) {
            EXPECT_TRUE(e.breakable) << pdg.edgeStr(e);
        }
    }

    // Header-phi classification: the IV is computable at depth 1.
    ASSERT_EQ(pdg.headerPhiInfo().size(), 1u);
    EXPECT_EQ(pdg.headerPhiInfo()[0].cls,
              analysis::PhiInfo::Cls::Computable);
    EXPECT_EQ(pdg.headerPhiInfo()[0].addrecDepth, 1u);
    EXPECT_FALSE(pdg.headerPhiInfo()[0].scevStr.empty());
}

TEST_F(PdgTest, LoopCarriedArrayRecurrenceIsDoAcrossSync)
{
    // a[i] = a[i-1] + 1: one must memory RAW at distance 1.
    ir::Module mod("recur");
    ir::IRBuilder b(mod);
    auto *ga = mod.addGlobal("a", 64 * 8);
    b.createFunction("main", ir::Type::I64);
    ir::CountedLoop loop(b, b.i64(1), b.i64(64), b.i64(1), "i");
    auto *im1 = b.sub(loop.iv(), b.i64(1), "im1");
    auto *v = b.load(ir::Type::I64, b.elem(ga, im1, "lp"), "v");
    auto *v1 = b.add(v, b.i64(1), "v1");
    b.store(v1, b.elem(ga, loop.iv(), "sp"));
    loop.finish();
    b.ret(b.i64(0));
    mod.finalize();

    PdgBundle bundle(mod, *mod.mainFunction());
    const LoopPdg &pdg = *bundle.pdgs[0];

    EXPECT_EQ(pdg.verdict().kind, VerdictKind::DoAcrossSync);
    ASSERT_EQ(pdg.verdict().doomedEdges.size(), 1u);
    const DepEdge &doomed = pdg.edges()[pdg.verdict().doomedEdges[0]];
    EXPECT_EQ(doomed.kind, DepKind::Memory);
    EXPECT_TRUE(doomed.carried);
    EXPECT_FALSE(doomed.may);
    // Edge direction: the store feeds the next iteration's load.
    EXPECT_EQ(pdg.node(doomed.src)->opcode(), ir::Opcode::Store);
    EXPECT_EQ(pdg.node(doomed.dst)->opcode(), ir::Opcode::Load);
}

TEST_F(PdgTest, NonLinearRecurrenceIsDoAcrossSync)
{
    // x = x*x + 1: a register LCD no technique breaks, but a must
    // dependence — forwardable point-to-point.
    ir::Module mod("sq");
    ir::IRBuilder b(mod);
    b.createFunction("main", ir::Type::I64);
    ir::CountedLoop loop(b, b.i64(0), b.i64(32), b.i64(1), "i");
    auto *x = loop.addRecurrence(ir::Type::I64, b.i64(2), "x");
    auto *xx = b.mul(x, x, "xx");
    auto *xn = b.add(xx, b.i64(1), "xn");
    loop.setNext(x, xn);
    loop.finish();
    b.ret(b.i64(0));
    mod.finalize();

    PdgBundle bundle(mod, *mod.mainFunction());
    const LoopPdg &pdg = *bundle.pdgs[0];

    ASSERT_EQ(pdg.headerPhiInfo().size(), 2u); // iv + x
    EXPECT_EQ(pdg.headerPhiInfo()[1].cls, analysis::PhiInfo::Cls::Other);

    EXPECT_EQ(pdg.verdict().kind, VerdictKind::DoAcrossSync);
    for (unsigned ei : pdg.verdict().doomedEdges) {
        const DepEdge &e = pdg.edges()[ei];
        EXPECT_EQ(e.kind, DepKind::Register) << pdg.edgeStr(e);
        EXPECT_FALSE(e.may);
    }
}

TEST_F(PdgTest, PurePointerChaseIsSequential)
{
    // while (p) p = *p: the chase, the exit test and the branch are one
    // doomed SCC covering the whole body.
    ir::Module mod("chase");
    ir::IRBuilder b(mod);
    auto *arena = mod.addGlobal("arena", 128 * 8);
    b.createFunction("main", ir::Type::I64);
    ir::WhileLoop loop(b, "walk");
    auto *p = loop.addRecurrence(ir::Type::Ptr, arena, "p");
    loop.beginCond();
    auto *c = b.icmpNe(p, mod.constNullPtr(), "c");
    loop.beginBody(c);
    auto *next = b.load(ir::Type::Ptr, p, "next");
    loop.setNext(p, next);
    loop.finish();
    b.ret(b.i64(0));
    mod.finalize();

    PdgBundle bundle(mod, *mod.mainFunction());
    const LoopPdg &pdg = *bundle.pdgs[0];

    EXPECT_EQ(pdg.verdict().kind, VerdictKind::Sequential);
    // The carried control edges are doomed: the exit is not countable.
    bool doomedControl = false;
    for (unsigned ei : pdg.verdict().doomedEdges)
        if (pdg.edges()[ei].kind == DepKind::Control)
            doomedControl = true;
    EXPECT_TRUE(doomedControl);
}

TEST_F(PdgTest, PointerChaseWithSideWorkIsPipeline)
{
    // while (p) { sum += p[1]; p = *p; }: the chase SCC is doomed, the
    // reduction SCC is a parallel stage -> classic DSWP shape.
    ir::Module mod("chasework");
    ir::IRBuilder b(mod);
    auto *arena = mod.addGlobal("arena", 128 * 8);
    b.createFunction("main", ir::Type::I64);
    ir::WhileLoop loop(b, "walk");
    auto *p = loop.addRecurrence(ir::Type::Ptr, arena, "p");
    auto *sum = loop.addRecurrence(ir::Type::I64, b.i64(0), "sum");
    loop.beginCond();
    auto *c = b.icmpNe(p, mod.constNullPtr(), "c");
    loop.beginBody(c);
    auto *payload =
        b.load(ir::Type::I64, b.ptradd(p, b.i64(8), "pp"), "payload");
    auto *sumN = b.add(sum, payload, "sumn");
    auto *next = b.load(ir::Type::Ptr, p, "next");
    loop.setNext(p, next);
    loop.setNext(sum, sumN);
    loop.finish();
    b.ret(b.i64(0));
    mod.finalize();

    PdgBundle bundle(mod, *mod.mainFunction());
    const LoopPdg &pdg = *bundle.pdgs[0];

    // The sum phi is a recognized reduction; the chase phi is not.
    ASSERT_EQ(pdg.headerPhiInfo().size(), 2u);
    EXPECT_EQ(pdg.headerPhiInfo()[0].cls, analysis::PhiInfo::Cls::Other);
    EXPECT_EQ(pdg.headerPhiInfo()[1].cls,
              analysis::PhiInfo::Cls::Reduction);

    EXPECT_EQ(pdg.verdict().kind, VerdictKind::Pipeline);
    EXPECT_GE(pdg.verdict().sccCount, 2u);
    // At least one SCC is free of doomed edges (the parallel stage).
    bool freeStage = false;
    for (unsigned s = 0; s < pdg.condensation().numSccs(); ++s)
        if (!pdg.sccDoomed(s))
            freeStage = true;
    EXPECT_TRUE(freeStage);
}

TEST_F(PdgTest, InvariantAddressReadModifyWriteIsDoAcrossSync)
{
    // g[0] += i: every iteration reads and writes one fixed granule —
    // must carried dependences in both directions.
    ir::Module mod("inv");
    ir::IRBuilder b(mod);
    auto *g = mod.addGlobal("g", 8);
    b.createFunction("main", ir::Type::I64);
    ir::CountedLoop loop(b, b.i64(0), b.i64(16), b.i64(1), "i");
    auto *v = b.load(ir::Type::I64, g, "v");
    auto *vn = b.add(v, loop.iv(), "vn");
    b.store(vn, g);
    loop.finish();
    b.ret(b.i64(0));
    mod.finalize();

    PdgBundle bundle(mod, *mod.mainFunction());
    const LoopPdg &pdg = *bundle.pdgs[0];

    EXPECT_EQ(pdg.verdict().kind, VerdictKind::DoAcrossSync);
    // store->load, load->store, plus the store's own WAW self edge.
    EXPECT_EQ(countEdges(pdg, DepKind::Memory, true, false), 3u);
    EXPECT_EQ(countEdges(pdg, DepKind::Memory, false, false), 1u);
}

TEST_F(PdgTest, OpaqueIndexStoreMakesMayEdgesAndPipeline)
{
    // hist[h % n]++: the subscript defeats SCEV, so the RMW pair gets
    // may edges both ways and the loop drops out of DOALL/DOACROSS.
    auto mod = test::buildHistogram(256, 16);
    const ir::Function *fn = mod->findFunction("main");
    ASSERT_NE(fn, nullptr);
    PdgBundle bundle(*mod, *fn);

    const LoopPdg *hist = nullptr;
    for (const auto &p : bundle.pdgs) {
        unsigned mayCarried = 0;
        for (const DepEdge &e : p->edges())
            if (e.kind == DepKind::Memory && e.carried && e.may)
                ++mayCarried;
        if (mayCarried > 0)
            hist = p.get();
    }
    ASSERT_NE(hist, nullptr) << "no loop with may-carried memory edges";
    EXPECT_NE(hist->verdict().kind, VerdictKind::DoAll);
    EXPECT_NE(hist->verdict().kind, VerdictKind::DoAcrossSync);
    // Evidence names the store in at least one doomed may edge.
    bool namedStore = false;
    for (unsigned ei : hist->verdict().doomedEdges) {
        const DepEdge &e = hist->edges()[ei];
        if (e.may &&
            (hist->node(e.src)->opcode() == ir::Opcode::Store ||
             hist->node(e.dst)->opcode() == ir::Opcode::Store))
            namedStore = true;
    }
    EXPECT_TRUE(namedStore);
}

TEST_F(PdgTest, ImpureCallGetsConservativeMemoryEdges)
{
    // A loop calling an unsafe external: the call pairs with every
    // non-private access, forcing may edges.
    auto mod = test::buildLoopWithCalls(64, test::CalleeKind::UnsafeExt);
    const ir::Function *fn = mod->findFunction("main");
    ASSERT_NE(fn, nullptr);
    PdgBundle bundle(*mod, *fn);

    bool callMayEdge = false;
    for (const auto &p : bundle.pdgs)
        for (const DepEdge &e : p->edges()) {
            if (e.kind != DepKind::Memory || !e.may)
                continue;
            ir::Opcode so = p->node(e.src)->opcode();
            ir::Opcode dop = p->node(e.dst)->opcode();
            if (so == ir::Opcode::Call || so == ir::Opcode::CallExt ||
                dop == ir::Opcode::Call || dop == ir::Opcode::CallExt)
                callMayEdge = true;
        }
    EXPECT_TRUE(callMayEdge);
}

// ------------------------------------------------- module-level verdicts

TEST_F(PdgTest, SaxpyClassifiesEveryLoopDoAll)
{
    auto mod = test::buildSaxpy(64);
    auto verdicts = analysis::classifyModuleVerdicts(*mod);
    ASSERT_FALSE(verdicts.empty());
    for (const auto &v : verdicts) {
        EXPECT_EQ(v.kind, VerdictKind::DoAll) << v.label;
        EXPECT_EQ(v.doomedEdges, 0u) << v.label;
        EXPECT_TRUE(v.evidence.empty()) << v.label;
    }
}

TEST_F(PdgTest, SumReductionStaysDoAllStatically)
{
    // The reduction's carried register edge is breakable (reduc1
    // decouples it), so the static verdict is DoAll.
    auto mod = test::buildSumReduction(64);
    auto verdicts = analysis::classifyModuleVerdicts(*mod);
    ASSERT_FALSE(verdicts.empty());
    for (const auto &v : verdicts)
        EXPECT_EQ(v.kind, VerdictKind::DoAll) << v.label;
}

TEST_F(PdgTest, VerdictSummariesCarryEvidenceAndCosts)
{
    auto mod = test::buildPointerChase(64);
    auto verdicts = analysis::classifyModuleVerdicts(*mod);
    bool sawDoomed = false;
    for (const auto &v : verdicts) {
        EXPECT_GE(v.sccCount, 1u) << v.label;
        EXPECT_GT(v.maxSccCost, 0u) << v.label;
        if (v.kind != VerdictKind::DoAll) {
            sawDoomed = true;
            EXPECT_GT(v.doomedEdges, 0u) << v.label;
            EXPECT_EQ(v.evidence.size(), v.doomedEdges) << v.label;
            for (const std::string &ev : v.evidence)
                EXPECT_NE(ev.find(" -> "), std::string::npos) << ev;
        }
    }
    EXPECT_TRUE(sawDoomed) << "pointer chase should not be all-DoAll";
}

TEST_F(PdgTest, VerdictsAreDeterministic)
{
    auto mod = test::buildHistogram(128, 8);
    auto a = analysis::classifyModuleVerdicts(*mod);
    auto b = analysis::classifyModuleVerdicts(*mod);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].doomedEdges, b[i].doomedEdges);
        EXPECT_EQ(a[i].evidence, b[i].evidence);
    }
}

// ------------------------------------------- parsed lint_corpus modules

/** Parse tests/lint_corpus/<name>.lir. */
std::unique_ptr<ir::Module>
parseCorpus(const std::string &name)
{
    std::string path =
        std::string(LP_SOURCE_DIR) + "/tests/lint_corpus/" + name + ".lir";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    return ir::parseModule(buf.str(), interp::stdlibImplFor);
}

TEST_F(PdgTest, ScatterStoreGetsCarriedSelfEdge)
{
    // may_lcd_store.lir: out[idx[i]] = i.  The scatter store is the
    // only writer, so without a self-edge the loop would read as
    // doall — which the dynamic tracker refutes whenever two
    // iterations hit the same cell.  Edge-level evidence: a carried
    // may WAW self-edge on the store.
    auto mod = parseCorpus("may_lcd_store");
    PdgBundle b(*mod, *mod->functions()[0]);
    const LoopPdg &pdg = b.byHeader("sc.hdr");

    bool sawSelf = false;
    for (const DepEdge &e : pdg.edges()) {
        if (e.kind != DepKind::Memory || e.src != e.dst)
            continue;
        sawSelf = true;
        EXPECT_TRUE(e.carried) << pdg.edgeStr(e);
        EXPECT_TRUE(e.may) << pdg.edgeStr(e);
        EXPECT_FALSE(e.breakable) << pdg.edgeStr(e);
        EXPECT_EQ(pdg.node(e.src)->opcode(), ir::Opcode::Store);
    }
    EXPECT_TRUE(sawSelf);
    EXPECT_NE(pdg.verdict().kind, VerdictKind::DoAll);
}

TEST_F(PdgTest, ImpureCallCycleCorpusHasConservativeCallEdges)
{
    // impure_call_cycle.lir: %v = call @bump (impure: loads and stores
    // @state).  The call must sit in a doomed SCC with a carried may
    // memory self-edge — repeated calls conflict with themselves.
    auto mod = parseCorpus("impure_call_cycle");
    const ir::Function *main = nullptr;
    for (const auto &fn : mod->functions())
        if (fn->name() == "main")
            main = fn.get();
    ASSERT_NE(main, nullptr);
    PdgBundle b(*mod, *main);
    const LoopPdg &pdg = b.byHeader("acc.hdr");

    const ir::Instruction *call = nullptr;
    for (unsigned i = 0; i < pdg.numNodes(); ++i)
        if (pdg.node(i)->opcode() == ir::Opcode::Call)
            call = pdg.node(i);
    ASSERT_NE(call, nullptr);
    int ci = pdg.indexOf(call);
    ASSERT_GE(ci, 0);

    bool sawCallSelf = false;
    for (const DepEdge &e : pdg.edges())
        if (e.kind == DepKind::Memory && e.carried && e.may &&
            e.src == unsigned(ci) && e.dst == unsigned(ci))
            sawCallSelf = true;
    EXPECT_TRUE(sawCallSelf);

    const analysis::StaticVerdict &v = pdg.verdict();
    EXPECT_NE(v.kind, VerdictKind::DoAll);
    bool callDoomed = false;
    for (unsigned ei : v.doomedEdges) {
        const DepEdge &e = pdg.edges()[ei];
        if (e.src == unsigned(ci) || e.dst == unsigned(ci))
            callDoomed = true;
    }
    EXPECT_TRUE(callDoomed);
}

TEST_F(PdgTest, ReductionAliasCorpusKeepsMayEdgeBetweenLoadAndStore)
{
    // reduction_alias.lir: s += a[i] while a[b[i]] = 0 scatters into
    // the same array — the affine load and the opaque store must be
    // joined by a may memory edge (either direction).
    auto mod = parseCorpus("reduction_alias");
    PdgBundle b(*mod, *mod->functions()[0]);
    const LoopPdg &pdg = b.byHeader("red.hdr");

    bool sawLoadStoreMay = false;
    for (const DepEdge &e : pdg.edges()) {
        if (e.kind != DepKind::Memory || !e.may || e.src == e.dst)
            continue;
        ir::Opcode a = pdg.node(e.src)->opcode();
        ir::Opcode c = pdg.node(e.dst)->opcode();
        if ((a == ir::Opcode::Load && c == ir::Opcode::Store) ||
            (a == ir::Opcode::Store && c == ir::Opcode::Load))
            sawLoadStoreMay = true;
    }
    EXPECT_TRUE(sawLoadStoreMay);
}

} // namespace
} // namespace lp

/**
 * @file
 * Unit tests for the interpreter: semantics, costs, determinism, events.
 */

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "interp/machine.hpp"
#include "interp/stdlib.hpp"
#include "ir/builder.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using namespace ir;
using interp::Machine;

std::uint64_t
runModule(Module &mod)
{
    Machine m(mod);
    return m.run();
}

TEST(Interp, SaxpyResult)
{
    // c[i] = a[i]*3 + b[i], a[i]=i, b[i]=2i => c[n-1] = 5(n-1).
    auto mod = test::buildSaxpy(100);
    EXPECT_EQ(runModule(*mod), 5u * 99u);
}

TEST(Interp, SumReductionResult)
{
    auto mod = test::buildSumReduction(100);
    EXPECT_EQ(runModule(*mod), 100u * 99u / 2u);
}

TEST(Interp, PointerChaseResults)
{
    auto seq = test::buildPointerChase(64);
    auto shuf = test::buildPointerChaseShuffled(64);
    // Both visit all nodes once; the per-node work is a function of the
    // payload alone, so both orders produce the same total.
    EXPECT_EQ(runModule(*seq), runModule(*shuf));
}

TEST(Interp, HistogramCountsSumToN)
{
    // Return hist[0]; we independently compute the expectation here.
    std::int64_t n = 64, buckets = 16;
    std::uint64_t expect = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t key = (i * 2654435761LL) >> 8;
        if (key % buckets == 0)
            ++expect;
    }
    auto mod = test::buildHistogram(n, buckets);
    EXPECT_EQ(runModule(*mod), expect);
}

TEST(Interp, Deterministic)
{
    auto a = test::buildPointerChaseShuffled(64);
    auto b = test::buildPointerChaseShuffled(64);
    Machine ma(*a), mb(*b);
    EXPECT_EQ(ma.run(), mb.run());
    EXPECT_EQ(ma.cost(), mb.cost());
}

TEST(Interp, CostGrowsWithN)
{
    auto small = test::buildSaxpy(10);
    auto large = test::buildSaxpy(1000);
    Machine ms(*small), ml(*large);
    ms.run();
    ml.run();
    EXPECT_GT(ml.cost(), 50 * ms.cost());
}

TEST(Interp, ArithmeticSemantics)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    Value *x = b.sub(b.i64(3), b.i64(10));       // -7
    Value *y = b.sdiv(x, b.i64(2));              // -3 (trunc toward zero)
    Value *z = b.srem(b.i64(-7), b.i64(3));      // -1
    Value *s = b.ashr(b.i64(-16), b.i64(2));     // -4
    Value *sel = b.select(b.icmpLt(y, z), s, x); // y<z: -3<-1 -> s = -4
    b.ret(b.add(sel, b.i64(4)));                 // 0
    mod.finalize();
    EXPECT_EQ(runModule(mod), 0u);
}

TEST(Interp, FloatSemantics)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    Value *x = b.fmul(b.f64(1.5), b.f64(4.0)); // 6.0
    Value *y = b.fdiv(x, b.f64(2.0));          // 3.0
    Value *c = b.fcmp(Opcode::FCmpGt, y, b.f64(2.5)); // 1
    Value *i = b.ftoi(y);                      // 3
    b.ret(b.add(i, c));                        // 4
    mod.finalize();
    EXPECT_EQ(runModule(mod), 4u);
}

TEST(Interp, DivisionByZeroIsFatal)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    b.ret(b.sdiv(b.i64(1), b.i64(0)));
    mod.finalize();
    Machine m(mod);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Interp, CostLimitAborts)
{
    auto mod = test::buildSaxpy(100000);
    Machine m(*mod);
    m.setCostLimit(1000);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Interp, AllocaIsFrameLocal)
{
    // Callee writes its own scratch; two sequential calls reuse the same
    // simulated stack addresses without interference.
    Module mod("m");
    IRBuilder b(mod);
    Function *f =
        b.createFunction("f", Type::I64, {{Type::I64, "x"}});
    Value *buf = b.allocaBytes(16, "buf");
    b.store(f->args()[0].get(), buf);
    b.ret(b.load(Type::I64, buf));

    b.createFunction("main", Type::I64);
    Value *a = b.call(f, {b.i64(7)});
    Value *c = b.call(f, {b.i64(35)});
    b.ret(b.add(a, c));
    mod.finalize();
    EXPECT_EQ(runModule(mod), 42u);
}

TEST(Interp, ExternalCallsChargeCost)
{
    Module mod("m");
    IRBuilder b(mod);
    interp::Stdlib lib = interp::registerStdlib(mod);
    b.createFunction("main", Type::I64);
    Value *r = b.callExt(lib.sqrt, {b.f64(144.0)});
    b.ret(b.ftoi(r));
    mod.finalize();

    Machine m(mod);
    EXPECT_EQ(m.run(), 12u);
    // Cost must include the external's declared 20 units.
    EXPECT_GE(m.cost(), 20u);
}

TEST(Interp, StdlibMallocReturnsDistinctChunks)
{
    Module mod("m");
    IRBuilder b(mod);
    interp::Stdlib lib = interp::registerStdlib(mod);
    b.createFunction("main", Type::I64);
    Value *p = b.callExt(lib.malloc, {b.i64(64)});
    Value *q = b.callExt(lib.malloc, {b.i64(64)});
    b.store(b.i64(1), p);
    b.store(b.i64(2), q);
    Value *sum = b.add(b.load(Type::I64, p), b.load(Type::I64, q));
    b.ret(sum);
    mod.finalize();
    EXPECT_EQ(runModule(mod), 3u);
}

TEST(Interp, StdlibRandDeterministicSequence)
{
    auto build = []() {
        auto mod = std::make_unique<Module>("m");
        IRBuilder b(*mod);
        interp::Stdlib lib = interp::registerStdlib(*mod);
        b.createFunction("main", Type::I64);
        Value *a = b.callExt(lib.rand, {});
        Value *c = b.callExt(lib.rand, {});
        b.ret(b.xor_(a, c));
        mod->finalize();
        return mod;
    };
    auto m1 = build();
    auto m2 = build();
    EXPECT_EQ(runModule(*m1), runModule(*m2));
}

/** Counts events fired by the interpreter. */
class CountingListener : public interp::ExecListener
{
  public:
    std::uint64_t blocks = 0, phis = 0, loads = 0, stores = 0, calls = 0,
                  enters = 0, exits = 0;
    void onBlockEnter(const BasicBlock *) override { ++blocks; }
    void onPhiResolved(const Instruction *, std::uint64_t) override
    {
        ++phis;
    }
    void onLoad(const Instruction *, std::uint64_t) override { ++loads; }
    void onStore(const Instruction *, std::uint64_t) override { ++stores; }
    void onCallSite(const Instruction *) override { ++calls; }
    void onFunctionEnter(const Function *) override { ++enters; }
    void onFunctionExit(const Function *) override { ++exits; }
};

TEST(Interp, EventStreamShape)
{
    std::int64_t n = 10;
    auto mod = test::buildLoopWithCalls(n, test::CalleeKind::Pure);
    CountingListener listener;
    Machine m(*mod, &listener);
    m.run();

    EXPECT_EQ(listener.enters, listener.exits);
    EXPECT_EQ(listener.enters, 1u + n); // main + n helper calls
    EXPECT_EQ(listener.calls, static_cast<std::uint64_t>(n));
    // init loop: n stores; main loop: n stores; helper: none.
    EXPECT_EQ(listener.stores, 2u * n);
    // init loop: 0 loads; main loop: 1 load per iteration + final load.
    EXPECT_EQ(listener.loads, n + 1u);
    // Two counted loops: one phi resolution per header visit.
    EXPECT_EQ(listener.phis, 2u * (n + 1u));
    EXPECT_GT(listener.blocks, 4u * n);
}

TEST(Interp, PhiValuesObserved)
{
    // The induction variable's observed sequence must be 0..n.
    struct IvListener : interp::ExecListener
    {
        std::vector<std::uint64_t> values;
        void
        onPhiResolved(const Instruction *phi, std::uint64_t bits) override
        {
            if (phi->name() == "i")
                values.push_back(bits);
        }
    };
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(5), b.i64(1), "i");
    l.finish();
    b.ret(b.i64(0));
    mod.finalize();

    IvListener listener;
    Machine m(mod, &listener);
    m.run();
    ASSERT_EQ(listener.values.size(), 6u);
    for (std::uint64_t k = 0; k <= 5; ++k)
        EXPECT_EQ(listener.values[k], k);
}

} // namespace
} // namespace lp

/**
 * @file
 * Unit tests for the IR substrate: construction, printing, verification.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using namespace ir;

TEST(Ir, TypeNamesAndSizes)
{
    EXPECT_STREQ(typeName(Type::I64), "i64");
    EXPECT_STREQ(typeName(Type::F64), "f64");
    EXPECT_STREQ(typeName(Type::Ptr), "ptr");
    EXPECT_STREQ(typeName(Type::Void), "void");
    EXPECT_EQ(typeSize(Type::I64), 8u);
    EXPECT_EQ(typeSize(Type::Void), 0u);
}

TEST(Ir, ConstantInterning)
{
    Module mod("m");
    EXPECT_EQ(mod.constI64(42), mod.constI64(42));
    EXPECT_NE(mod.constI64(42), mod.constI64(43));
    EXPECT_EQ(mod.constF64(1.5), mod.constF64(1.5));
    EXPECT_EQ(mod.constNullPtr(), mod.constNullPtr());
    EXPECT_EQ(mod.constNullPtr()->type(), Type::Ptr);
}

TEST(Ir, BuilderProducesVerifiableModule)
{
    auto mod = test::buildSaxpy(16);
    VerifyResult r = verifyModule(*mod);
    EXPECT_TRUE(r.ok()) << r.message();
}

TEST(Ir, AllHelperModulesVerify)
{
    for (auto &mod :
         {test::buildSumReduction(8), test::buildPointerChase(8),
          test::buildPointerChaseShuffled(8),
          test::buildHistogram(32, 8),
          test::buildLoopWithCalls(8, test::CalleeKind::Pure),
          test::buildLoopWithCalls(8, test::CalleeKind::Instrumented),
          test::buildLoopWithCalls(8, test::CalleeKind::UnsafeExt)}) {
        VerifyResult r = verifyModule(*mod);
        EXPECT_TRUE(r.ok()) << mod->name() << ": " << r.message();
    }
}

TEST(Ir, VerifierCatchesMissingTerminator)
{
    Module mod("bad");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    b.add(b.i64(1), b.i64(2)); // no ret
    mod.finalize();
    VerifyResult r = verifyModule(mod);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("lacks a terminator"), std::string::npos);
}

TEST(Ir, VerifierCatchesTypeMismatch)
{
    Module mod("bad");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    // fadd over integers.
    auto instr = std::make_unique<Instruction>(Opcode::FAdd, Type::F64, "");
    instr->addOperand(b.i64(1));
    instr->addOperand(b.i64(2));
    b.insertBlock()->append(std::move(instr));
    b.ret(b.i64(0));
    mod.finalize();
    VerifyResult r = verifyModule(mod);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("expected f64"), std::string::npos);
}

TEST(Ir, VerifierCatchesPhiPredMismatch)
{
    Module mod("bad");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    BasicBlock *next = b.newBlock("next");
    b.jmp(next);
    b.setInsertPoint(next);
    Instruction *phi = b.phi(Type::I64, "p"); // zero incoming, one pred
    b.ret(phi);
    mod.finalize();
    VerifyResult r = verifyModule(mod);
    ASSERT_FALSE(r.ok());
}

TEST(Ir, VerifierRequiresMain)
{
    Module mod("nomain");
    IRBuilder b(mod);
    b.createFunction("helper", Type::Void);
    b.retVoid();
    mod.finalize();
    VerifyResult r = verifyModule(mod);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("no main"), std::string::npos);
}

TEST(Ir, PredecessorsTracked)
{
    auto mod = test::buildSaxpy(4);
    const Function *main = mod->mainFunction();
    // Every loop header in the saxpy module has two predecessors
    // (preheader and latch).
    int headers = 0;
    for (const auto &bb : main->blocks()) {
        if (bb->name().find(".hdr") != std::string::npos) {
            EXPECT_EQ(bb->predecessors().size(), 2u) << bb->name();
            ++headers;
        }
    }
    EXPECT_EQ(headers, 3);
}

TEST(Ir, PrinterOutputContainsStructure)
{
    auto mod = test::buildSumReduction(4);
    std::ostringstream os;
    mod->print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("func i64 @main()"), std::string::npos);
    EXPECT_NE(s.find("phi"), std::string::npos);
    EXPECT_NE(s.find("global @a"), std::string::npos);
    EXPECT_NE(s.find("j.hdr"), std::string::npos);
}

TEST(Ir, IncomingForFindsEdgeValue)
{
    Module mod("m");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    CountedLoop l(b, b.i64(0), b.i64(10), b.i64(1), "i");
    l.finish();
    b.ret(b.i64(0));
    mod.finalize();

    const Function *main = mod.mainFunction();
    const BasicBlock *header = nullptr;
    for (const auto &bb : main->blocks())
        if (bb->name() == "i.hdr")
            header = bb.get();
    ASSERT_NE(header, nullptr);
    auto phis = header->phis();
    ASSERT_EQ(phis.size(), 1u);
    // Incoming from the entry block is the constant 0.
    const Value *init = phis[0]->incomingFor(main->entry());
    ASSERT_EQ(init->kind(), ValueKind::ConstInt);
    EXPECT_EQ(static_cast<const ConstInt *>(init)->value(), 0);
}

TEST(Ir, RenumberAssignsDenseIds)
{
    auto mod = test::buildSaxpy(4);
    const Function *main = mod->mainFunction();
    EXPECT_GT(main->numLocals(), 0u);
    std::vector<bool> seen(main->numLocals(), false);
    for (const auto &bb : main->blocks()) {
        for (const auto &instr : bb->instructions()) {
            ASSERT_LT(instr->localId(), main->numLocals());
            EXPECT_FALSE(seen[instr->localId()]);
            seen[instr->localId()] = true;
        }
    }
}

TEST(Ir, ExternalAttributes)
{
    EXPECT_STREQ(extAttrName(ExtAttr::Pure), "pure");
    EXPECT_STREQ(extAttrName(ExtAttr::ThreadSafe), "threadsafe");
    EXPECT_STREQ(extAttrName(ExtAttr::Unsafe), "unsafe");
}

TEST(Ir, DuplicateFunctionNameRejected)
{
    Module mod("m");
    mod.addFunction("f", Type::Void);
    EXPECT_THROW(mod.addFunction("f", Type::Void), FatalError);
}

TEST(Ir, VerifierCatchesOperandDominanceViolation)
{
    // A value defined on one side of a diamond and used at the join:
    // every name resolves, yet the definition does not dominate the
    // use — the non-phi dominance check must reject it.
    Module mod("bad");
    IRBuilder b(mod);
    b.createFunction("main", Type::I64);
    BasicBlock *left = b.newBlock("left");
    BasicBlock *right = b.newBlock("right");
    BasicBlock *join = b.newBlock("join");
    b.br(b.icmpLt(b.i64(1), b.i64(2), "c"), left, right);
    b.setInsertPoint(left);
    Value *x = b.add(b.i64(1), b.i64(2), "x");
    b.jmp(join);
    b.setInsertPoint(right);
    b.jmp(join);
    b.setInsertPoint(join);
    b.ret(b.add(x, b.i64(3), "y"));
    mod.finalize();

    VerifyResult r = verifyModule(mod);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("dominate"), std::string::npos)
        << r.message();
    EXPECT_NE(r.message().find("%x"), std::string::npos) << r.message();
}

} // namespace
} // namespace lp

/**
 * @file
 * Tests for lp::lint: every LINT_* rule fires on its seeded-defect
 * corpus file (tests/lint_corpus/) with the exact expected finding set,
 * the bundled suites lint clean, the SARIF emitter produces parseable
 * output, the LCD classifier matches the paper's Table-I classes, and
 * the static-vs-dynamic consistency oracle reports zero mismatches on
 * honest runs and catches a deliberately forced false claim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "helpers.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "lint/engine.hpp"
#include "lint/lcd_classify.hpp"
#include "lint/oracle.hpp"
#include "lint/sarif.hpp"
#include "rt/oracle_capture.hpp"
#include "suites/registry.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;
using rt::ProgramReport;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Parse tests/lint_corpus/<name>.lir and lint it. */
lint::LintResult
lintCorpus(const std::string &name, const lint::LintOptions &opts = {})
{
    std::string path =
        std::string(LP_SOURCE_DIR) + "/tests/lint_corpus/" + name + ".lir";
    auto mod = ir::parseModule(readFile(path), interp::stdlibImplFor);
    return lint::lintModule(*mod, opts);
}

/** Sorted rule ids of all findings. */
std::vector<std::string>
rules(const lint::LintResult &res)
{
    std::vector<std::string> ids;
    for (const lint::Diagnostic &d : res.diags)
        ids.push_back(d.rule);
    std::sort(ids.begin(), ids.end());
    return ids;
}

const lint::Diagnostic *
findRule(const lint::LintResult &res, const std::string &rule)
{
    for (const lint::Diagnostic &d : res.diags)
        if (d.rule == rule)
            return &d;
    return nullptr;
}

// ---------------------------------------------------------------------
// Seeded-defect corpus: each rule fires with the exact expected set.
// ---------------------------------------------------------------------

TEST(LintCorpus, DomOperandAlsoTripsSsa)
{
    // Operand-dominance defects fire both LINT_DOM_OPERAND (the precise
    // per-use rule) and LINT_SSA (the verifier promotion) by design.
    lint::LintResult res = lintCorpus("dom_operand");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_DOM_OPERAND", "LINT_SSA"}));
    EXPECT_TRUE(res.hasErrors());

    const lint::Diagnostic *d = findRule(res, "LINT_DOM_OPERAND");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Error);
    EXPECT_EQ(d->loc.function, "main");
    EXPECT_EQ(d->loc.block, "join");
    EXPECT_EQ(d->loc.instr, "y");
    EXPECT_EQ(d->loc.line, 13u);
    EXPECT_NE(d->message.find("%x"), std::string::npos);
}

TEST(LintCorpus, Unreachable)
{
    lint::LintResult res = lintCorpus("unreachable");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_UNREACHABLE"}));
    EXPECT_FALSE(res.hasErrors());
    EXPECT_EQ(res.diags[0].severity, lint::Severity::Warning);
    EXPECT_EQ(res.diags[0].loc.block, "island");
    // The dead %z inside the unreachable block must NOT also fire
    // LINT_DEAD_DEF: the unreachable finding owns that block.
}

TEST(LintCorpus, DeadDef)
{
    lint::LintResult res = lintCorpus("dead_def");
    EXPECT_EQ(rules(res), (std::vector<std::string>{"LINT_DEAD_DEF"}));
    EXPECT_FALSE(res.hasErrors());
    EXPECT_EQ(res.diags[0].loc.instr, "unused");
}

TEST(LintCorpus, GlobalOob)
{
    lint::LintResult res = lintCorpus("global_oob");
    EXPECT_EQ(rules(res), (std::vector<std::string>{"LINT_GLOBAL_OOB"}));
    EXPECT_TRUE(res.hasErrors());
    const lint::Diagnostic &d = res.diags[0];
    EXPECT_NE(d.message.find("@buf"), std::string::npos);
    EXPECT_NE(d.message.find("16"), std::string::npos);
}

TEST(LintCorpus, InfiniteLoop)
{
    lint::LintResult res = lintCorpus("infinite");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_INFINITE_LOOP"}));
    // The loop is otherwise canonical, so no shape warning rides along.
    EXPECT_EQ(res.diags[0].loc.block, "spin.hdr");
}

TEST(LintCorpus, Irreducible)
{
    lint::LintResult res = lintCorpus("irreducible");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_IRREDUCIBLE"}));
    EXPECT_NE(res.diags[0].message.find("irreducible"),
              std::string::npos);
}

TEST(LintCorpus, NonCanonicalLoop)
{
    lint::LintResult res = lintCorpus("noncanonical");
    // The linear IV escapes canonical-loop SCEV, so the PDG's missed-
    // computable note rides along with the shape warning.
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_NON_CANONICAL_LOOP",
                                        "LINT_PDG_MISSED_COMPUTABLE"}));
    EXPECT_NE(res.diags[0].message.find("multiple latches"),
              std::string::npos);
    EXPECT_NE(res.diags[1].message.find("not canonical"),
              std::string::npos);
}

TEST(LintCorpus, MayLcdStore)
{
    lint::LintResult res = lintCorpus("may_lcd_store");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_PDG_MAY_LCD_STORE"}));
    EXPECT_FALSE(res.hasErrors());
    const lint::Diagnostic &d = res.diags[0];
    EXPECT_EQ(d.severity, lint::Severity::Note);
    EXPECT_EQ(d.loc.block, "sc.body");
    // The finding carries edge-level evidence: the scatter store is the
    // *only* reason the loop is not doall.
    EXPECT_NE(d.message.find("demotes"), std::string::npos);
    EXPECT_NE(d.message.find("doall"), std::string::npos);
}

TEST(LintCorpus, ImpureCallCycle)
{
    lint::LintResult res = lintCorpus("impure_call_cycle");
    ASSERT_FALSE(res.diags.empty());
    bool sawCycle = false;
    for (const lint::Diagnostic &d : res.diags)
        if (d.rule == "LINT_PDG_IMPURE_CALL_CYCLE") {
            sawCycle = true;
            EXPECT_EQ(d.severity, lint::Severity::Note);
            EXPECT_NE(d.message.find("@bump"), std::string::npos);
        }
    EXPECT_TRUE(sawCycle);
    EXPECT_FALSE(res.hasErrors());
}

TEST(LintCorpus, ReductionAlias)
{
    lint::LintResult res = lintCorpus("reduction_alias");
    bool sawAlias = false;
    for (const lint::Diagnostic &d : res.diags)
        if (d.rule == "LINT_PDG_REDUCTION_ALIAS") {
            sawAlias = true;
            EXPECT_EQ(d.severity, lint::Severity::Warning);
            // Anchored at the aliasing load, naming the reduction phi.
            EXPECT_EQ(d.loc.instr, "x");
            EXPECT_NE(d.message.find("reduction %s"), std::string::npos);
        }
    EXPECT_TRUE(sawAlias);
}

// ---------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------

TEST(LintOptions, WarningsAsErrorsPromotes)
{
    lint::LintOptions opts;
    opts.warningsAsErrors = true;
    lint::LintResult res = lintCorpus("dead_def", opts);
    ASSERT_EQ(res.diags.size(), 1u);
    EXPECT_EQ(res.diags[0].severity, lint::Severity::Error);
    EXPECT_TRUE(res.hasErrors());
}

TEST(LintOptions, DisabledRulesSkip)
{
    lint::LintOptions opts;
    opts.disabledRules = {"LINT_DEAD_DEF"};
    lint::LintResult res = lintCorpus("dead_def", opts);
    EXPECT_TRUE(res.diags.empty());
}

TEST(LintOptions, ClassifyOffSuppressesDeps)
{
    lint::LintOptions opts;
    opts.classify = false;
    lint::LintResult res = lintCorpus("dead_def", opts);
    EXPECT_TRUE(res.deps.isNull());
}

// ---------------------------------------------------------------------
// Clean inputs: nothing we ship has Warning-or-worse findings.  The
// advisory PDG notes (may-LCD stores, impure call cycles) fire on
// several SPEC-like kernels *by design* — they describe the kernels'
// intended dependence structure, not defects.
// ---------------------------------------------------------------------

TEST(LintClean, BundledSuitesHaveNoWarningsOrErrors)
{
    bool sawPdgNote = false;
    for (const core::BenchProgram &prog : suites::allPrograms()) {
        auto mod = prog.build();
        lint::LintResult res = lint::lintModule(*mod);
        EXPECT_EQ(res.countAtLeast(lint::Severity::Warning), 0u)
            << prog.suite << "/" << prog.name << ": "
            << (res.diags.empty() ? "" : res.diags[0].str());
        for (const lint::Diagnostic &d : res.diags) {
            EXPECT_EQ(d.severity, lint::Severity::Note) << d.str();
            EXPECT_EQ(d.rule.rfind("LINT_PDG_", 0), 0u) << d.str();
            sawPdgNote = true;
        }
    }
    // The advisory layer is alive: at least one kernel carries a note.
    EXPECT_TRUE(sawPdgNote);
}

TEST(LintClean, SampleLirHasZeroFindings)
{
    std::string path = std::string(LP_SOURCE_DIR) + "/examples/sample.lir";
    auto mod = ir::parseModule(readFile(path), interp::stdlibImplFor);
    lint::LintResult res = lint::lintModule(*mod);
    EXPECT_TRUE(res.diags.empty())
        << (res.diags.empty() ? "" : res.diags[0].str());
}

// ---------------------------------------------------------------------
// LCD classifier (lint.deps).
// ---------------------------------------------------------------------

/** All "class" strings across every loop/phi of a deps document. */
std::vector<std::string>
depClasses(const obs::Json &deps)
{
    std::vector<std::string> out;
    const obs::Json &loops = deps.at("loops");
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const obs::Json &phis = loops.at(i).at("phis");
        for (std::size_t j = 0; j < phis.size(); ++j)
            out.push_back(phis.at(j).at("class").asString());
    }
    return out;
}

TEST(LintDeps, SaxpyIsAllComputable)
{
    auto mod = test::buildSaxpy(64);
    obs::Json deps = lint::classifyModule(*mod);
    std::vector<std::string> classes = depClasses(deps);
    ASSERT_FALSE(classes.empty());
    for (const std::string &c : classes)
        EXPECT_EQ(c, lint::kClassComputable);
}

TEST(LintDeps, SumReductionIsClassified)
{
    auto mod = test::buildSumReduction(64);
    std::vector<std::string> classes =
        depClasses(lint::classifyModule(*mod));
    EXPECT_NE(std::find(classes.begin(), classes.end(),
                        lint::kClassReduction),
              classes.end());
}

TEST(LintDeps, PointerChaseIsPredictionCandidate)
{
    auto mod = test::buildPointerChaseShuffled(32);
    std::vector<std::string> classes =
        depClasses(lint::classifyModule(*mod));
    EXPECT_NE(std::find(classes.begin(), classes.end(),
                        lint::kClassPredictionCandidate),
              classes.end());
}

// ---------------------------------------------------------------------
// SARIF emitter.
// ---------------------------------------------------------------------

TEST(LintSarif, CorpusFindingsSurviveTheRoundTrip)
{
    std::vector<lint::LintResult> results;
    for (const char *name :
         {"dom_operand", "unreachable", "dead_def", "global_oob",
          "infinite", "irreducible", "noncanonical"}) {
        lint::LintResult res = lintCorpus(name);
        res.artifact = std::string(name) + ".lir";
        results.push_back(std::move(res));
    }

    std::string text = lint::toSarif(results).dump(2);
    std::string err;
    obs::Json doc = obs::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    EXPECT_EQ(doc.at("version").asString(), "2.1.0");
    const obs::Json &run = doc.at("runs").at(0);
    const obs::Json &driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").asString(), "lp-lint");
    // The rule table covers the 12 static rules plus the 4 oracle rules.
    EXPECT_EQ(driver.at("rules").size(), 16u);

    // 9 findings total: dom_operand and noncanonical contribute 2 each,
    // the rest 1.
    const obs::Json &sarifResults = run.at("results");
    EXPECT_EQ(sarifResults.size(), 9u);
    for (std::size_t i = 0; i < sarifResults.size(); ++i) {
        const obs::Json &r = sarifResults.at(i);
        EXPECT_EQ(r.at("ruleId").asString().rfind("LINT_", 0), 0u);
        EXPECT_FALSE(r.at("message").at("text").asString().empty());
        EXPECT_GE(r.at("locations").size(), 1u);
    }

    // The machine-readable classification rides along as a property.
    EXPECT_TRUE(run.at("properties").contains("lint.deps"));
}

TEST(LintSarif, BuiltModulesGetOrdinalFingerprints)
{
    // A builder-constructed module has no source text: every Location
    // reports line 0, so the emitter falls back to the structural
    // "@func:block:%instr" ordinal in partialFingerprints.
    auto mod = test::buildHistogram(32, 4);
    lint::LintResult res = lint::lintModule(*mod);
    ASSERT_FALSE(res.diags.empty()); // the may-LCD store note
    EXPECT_EQ(res.diags[0].loc.line, 0u);
    res.artifact = "built:hist";

    obs::Json doc = lint::toSarif({res});
    const obs::Json &results = doc.at("runs").at(0).at("results");
    ASSERT_GE(results.size(), 1u);
    const obs::Json &r = results.at(0);
    ASSERT_TRUE(r.contains("partialFingerprints"));
    std::string fp = r.at("partialFingerprints")
                         .at("lpLintOrdinal/v1")
                         .asString();
    EXPECT_EQ(fp.rfind("@main:", 0), 0u) << fp;

    // Determinism: the same module built twice fingerprints identically.
    auto mod2 = test::buildHistogram(32, 4);
    lint::LintResult res2 = lint::lintModule(*mod2);
    res2.artifact = "built:hist";
    EXPECT_EQ(lint::toSarif({res}).dump(2),
              lint::toSarif({res2}).dump(2));
}

TEST(LintSarif, ParsedModulesKeepLineRegionsNotFingerprints)
{
    // Parsed corpus files carry real line info, so the ordinal
    // fallback must stay absent and the region present.
    lint::LintResult res = lintCorpus("dead_def");
    ASSERT_FALSE(res.diags.empty());
    EXPECT_NE(res.diags[0].loc.line, 0u);
    res.artifact = "dead_def.lir";

    obs::Json doc = lint::toSarif({res});
    const obs::Json &r = doc.at("runs").at(0).at("results").at(0);
    EXPECT_FALSE(r.contains("partialFingerprints"));
    EXPECT_TRUE(r.at("locations")
                    .at(0)
                    .at("physicalLocation")
                    .contains("region"));
}

TEST(LintSarif, RuleMetaIncludesOracleRules)
{
    bool diverged = false, missed = false;
    bool contradicted = false, conservative = false;
    for (const lint::RuleMeta &m : lint::standardRuleMeta()) {
        diverged |= m.id == "LINT_ORACLE_COMPUTABLE_DIVERGED";
        missed |= m.id == "LINT_ORACLE_MISSED_IV";
        contradicted |= m.id == "LINT_ORACLE_VERDICT_CONTRADICTED";
        conservative |= m.id == "LINT_ORACLE_STATIC_CONSERVATIVE";
    }
    EXPECT_TRUE(diverged);
    EXPECT_TRUE(missed);
    EXPECT_TRUE(contradicted);
    EXPECT_TRUE(conservative);
}

// ---------------------------------------------------------------------
// Consistency oracle.
// ---------------------------------------------------------------------

LPConfig
cfg(const char *flags)
{
    return LPConfig::parse(flags, ExecModel::DoAll);
}

/** First header phi of any loop in @p mod (for synthetic watches). */
const ir::Instruction *
anyPhi(const ir::Module &mod)
{
    for (const auto &fn : mod.functions())
        for (const auto &bb : fn->blocks())
            for (const ir::Instruction *phi : bb->phis())
                return phi;
    return nullptr;
}

TEST(LintOracle, CleanRunHasZeroMismatches)
{
    auto mod = test::buildSaxpy(256);
    Loopapalooza lp(*mod);
    rt::OracleCapture cap;
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"), cap);

    EXPECT_TRUE(rep.oracleRan);
    EXPECT_GT(rep.oraclePhisChecked, 0u);
    EXPECT_EQ(rep.oracleMismatches, 0u);
    for (const lint::Diagnostic &d : lint::checkOracle(cap))
        EXPECT_NE(d.severity, lint::Severity::Error) << d.str();
    // The oracle section appears in the JSON report...
    EXPECT_TRUE(rep.toJson(false).contains("oracle"));
}

TEST(LintOracle, OracleFreeReportsStayOracleFree)
{
    // ...and stays absent from oracle-free runs, so pre-oracle report
    // consumers (checkpoints, aggregation) see byte-identical JSON.
    auto mod = test::buildSaxpy(64);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"));
    EXPECT_FALSE(rep.oracleRan);
    EXPECT_FALSE(rep.toJson(false).contains("oracle"));
}

TEST(LintOracle, RunWithOracleConvenience)
{
    auto mod = test::buildSumReduction(128);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.runWithOracle(cfg("reduc1-dep0-fn0"));
    EXPECT_TRUE(rep.oracleRan);
    EXPECT_EQ(rep.oracleMismatches, 0u);
}

TEST(LintOracle, ForcedFalseClaimIsCaughtEndToEnd)
{
    // Claim the shuffled pointer-chase LCD is SCEV-computable: the
    // finite-difference check over the permuted addresses must break
    // and surface as a LINT_ORACLE_COMPUTABLE_DIVERGED mismatch.
    auto mod = test::buildPointerChaseShuffled(64);
    Loopapalooza lp(*mod);
    rt::OracleCapture cap;
    for (const auto &fp : lp.plan().functionPlans())
        for (const rt::LoopPlan &lplan : fp->loopPlans)
            for (const rt::TrackedPhi &tp : lplan.nonComputable)
                cap.forceClaim(tp.phi);

    // Watch registration is config-independent, so plain dep0 works.
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"), cap);
    EXPECT_TRUE(rep.oracleRan);
    EXPECT_GT(rep.oracleMismatches, 0u);
    bool found = false;
    for (const rt::OracleFinding &f : rep.oracleFindings) {
        if (f.rule != "LINT_ORACLE_COMPUTABLE_DIVERGED")
            continue;
        found = true;
        EXPECT_EQ(f.severity, std::string("error"));
        EXPECT_FALSE(f.phi.empty());
    }
    EXPECT_TRUE(found);
}

TEST(LintOracle, SyntheticDivergenceIsAnError)
{
    auto mod = test::buildSaxpy(8);
    const ir::Instruction *phi = anyPhi(*mod);
    ASSERT_NE(phi, nullptr);

    rt::OracleCapture cap;
    unsigned w = cap.addWatch({phi, "main.loop", "i", 1, true});
    cap.seal();
    rt::OracleCapture::State st;
    for (std::uint64_t v : {1u, 2u, 4u, 8u, 16u}) // not affine
        rt::OracleCapture::observe(st, 1, v);
    EXPECT_TRUE(st.broken);
    cap.recordInstance(w, st, 1);

    std::vector<lint::Diagnostic> diags = lint::checkOracle(cap);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "LINT_ORACLE_COMPUTABLE_DIVERGED");
    EXPECT_EQ(diags[0].severity, lint::Severity::Error);
}

TEST(LintOracle, SyntheticMissedIvIsANote)
{
    auto mod = test::buildSaxpy(8);
    const ir::Instruction *phi = anyPhi(*mod);
    ASSERT_NE(phi, nullptr);

    // Claimed NON-computable, yet perfectly affine in every instance.
    rt::OracleCapture cap;
    unsigned w = cap.addWatch({phi, "main.loop", "p", 1, false});
    cap.seal();
    rt::OracleCapture::State st;
    for (std::uint64_t v = 2; v < 32; v += 3)
        rt::OracleCapture::observe(st, 1, v);
    EXPECT_FALSE(st.broken);
    cap.recordInstance(w, st, 1);

    std::vector<lint::Diagnostic> diags = lint::checkOracle(cap);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "LINT_ORACLE_MISSED_IV");
    EXPECT_EQ(diags[0].severity, lint::Severity::Note);
}

// ---------------------------------------------------------------------
// Whole-loop verdict oracle.
// ---------------------------------------------------------------------

TEST(LintVerdictOracle, CleanRunHasNoContradictions)
{
    auto mod = test::buildSaxpy(256);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.runWithOracle(cfg("reduc0-dep0-fn0"));

    EXPECT_TRUE(rep.staticVerdictsRan);
    ASSERT_FALSE(rep.staticVerdicts.empty());
    EXPECT_EQ(rep.verdictContradictions, 0u);
    // Saxpy is the canonical doall kernel; the PDG must agree.
    bool sawDoall = false;
    for (const rt::StaticLoopVerdict &v : rep.staticVerdicts)
        sawDoall |= v.kind == "doall";
    EXPECT_TRUE(sawDoall);
    EXPECT_TRUE(rep.toJson(false).contains("static_verdict"));
}

TEST(LintVerdictOracle, VerdictFreeReportsStayVerdictFree)
{
    auto mod = test::buildSaxpy(64);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"));
    EXPECT_FALSE(rep.staticVerdictsRan);
    EXPECT_FALSE(rep.toJson(false).contains("static_verdict"));
}

TEST(LintVerdictOracle, StaticDoallWithDynamicConflictsIsAnError)
{
    // Synthesize the contradiction: the classifier says doall, the
    // tracker saw frequent conflicts.  This is exactly the defect the
    // oracle exists to catch.
    analysis::LoopVerdictSummary v;
    v.label = "main.hdr";
    v.kind = analysis::VerdictKind::DoAll;

    ProgramReport rep;
    rt::LoopReport lr;
    lr.label = "main.hdr";
    lr.iterations = 100;
    lr.memConflicts = 25;
    lr.conflictIterations = 20; // 20% > the 5% frequent threshold
    rep.loops.push_back(lr);

    std::vector<lint::Diagnostic> diags = lint::checkVerdicts({v}, rep);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "LINT_ORACLE_VERDICT_CONTRADICTED");
    EXPECT_EQ(diags[0].severity, lint::Severity::Error);
    EXPECT_EQ(diags[0].loc.function, "main");
    EXPECT_EQ(diags[0].loc.block, "hdr");
}

TEST(LintVerdictOracle, RegisterOnlyConflictsDoNotContradictDoall)
{
    // reduc0/pred0 runs disable breaking techniques on purpose: the
    // register LCD conflicts that follow say nothing about the PDG's
    // memory edges, so static doall stands.
    analysis::LoopVerdictSummary v;
    v.label = "main.hdr";
    v.kind = analysis::VerdictKind::DoAll;

    ProgramReport rep;
    rt::LoopReport lr;
    lr.label = "main.hdr";
    lr.iterations = 64;
    lr.conflictIterations = 63; // all register-LCD squashes
    lr.memConflicts = 0;
    rep.loops.push_back(lr);

    EXPECT_TRUE(lint::checkVerdicts({v}, rep).empty());
}

TEST(LintVerdictOracle, InfrequentConflictsDoNotContradictDoall)
{
    analysis::LoopVerdictSummary v;
    v.label = "main.hdr";
    v.kind = analysis::VerdictKind::DoAll;

    ProgramReport rep;
    rt::LoopReport lr;
    lr.label = "main.hdr";
    lr.iterations = 100;
    lr.conflictIterations = 3; // under the 5% frequent threshold
    rep.loops.push_back(lr);

    EXPECT_TRUE(lint::checkVerdicts({v}, rep).empty());
}

TEST(LintVerdictOracle, AllMayDemotionRunningCleanIsANote)
{
    analysis::LoopVerdictSummary v;
    v.label = "main.hdr";
    v.kind = analysis::VerdictKind::DoAcrossSync;
    v.doomedEdges = 2;
    v.doomedMay = 2; // demoted by may-edges alone

    ProgramReport rep;
    rt::LoopReport lr;
    lr.label = "main.hdr";
    lr.iterations = 50; // spotless run
    rep.loops.push_back(lr);

    std::vector<lint::Diagnostic> diags = lint::checkVerdicts({v}, rep);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "LINT_ORACLE_STATIC_CONSERVATIVE");
    EXPECT_EQ(diags[0].severity, lint::Severity::Note);
    EXPECT_NE(diags[0].message.find("2 may edge(s)"), std::string::npos);
}

TEST(LintVerdictOracle, MustDemotionsAndUnexecutedLoopsStayQuiet)
{
    // A must-edge demotion is correct by construction; a loop that
    // never ran has no dynamic evidence either way.
    analysis::LoopVerdictSummary must;
    must.label = "main.a";
    must.kind = analysis::VerdictKind::Sequential;
    must.doomedEdges = 3;
    must.doomedMay = 1; // mixed: not a pure-may demotion

    analysis::LoopVerdictSummary unexecuted;
    unexecuted.label = "main.b";
    unexecuted.kind = analysis::VerdictKind::DoAll;

    ProgramReport rep;
    rt::LoopReport lr;
    lr.label = "main.a";
    lr.iterations = 10;
    rep.loops.push_back(lr); // main.b has no dynamic row at all

    EXPECT_TRUE(lint::checkVerdicts({must, unexecuted}, rep).empty());
}

// ---------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------

TEST(LintTaxonomy, LintErrorCarriesTheLintCode)
{
    ErrorContext ctx;
    ctx.program = "chase";
    LintError e("3 error-level lint finding(s)", ctx);
    EXPECT_EQ(e.code(), ErrorCode::Lint);
    EXPECT_EQ(std::string(e.codeName()), "LP_LINT");
    EXPECT_FALSE(e.transient());
    std::string msg = e.what();
    EXPECT_NE(msg.find("[LP_LINT]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("chase"), std::string::npos) << msg;
}

} // namespace
} // namespace lp

/**
 * @file
 * Tests for lp::lint: every LINT_* rule fires on its seeded-defect
 * corpus file (tests/lint_corpus/) with the exact expected finding set,
 * the bundled suites lint clean, the SARIF emitter produces parseable
 * output, the LCD classifier matches the paper's Table-I classes, and
 * the static-vs-dynamic consistency oracle reports zero mismatches on
 * honest runs and catches a deliberately forced false claim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "helpers.hpp"
#include "interp/stdlib.hpp"
#include "ir/parser.hpp"
#include "lint/engine.hpp"
#include "lint/lcd_classify.hpp"
#include "lint/oracle.hpp"
#include "lint/sarif.hpp"
#include "rt/oracle_capture.hpp"
#include "suites/registry.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;
using rt::ProgramReport;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Parse tests/lint_corpus/<name>.lir and lint it. */
lint::LintResult
lintCorpus(const std::string &name, const lint::LintOptions &opts = {})
{
    std::string path =
        std::string(LP_SOURCE_DIR) + "/tests/lint_corpus/" + name + ".lir";
    auto mod = ir::parseModule(readFile(path), interp::stdlibImplFor);
    return lint::lintModule(*mod, opts);
}

/** Sorted rule ids of all findings. */
std::vector<std::string>
rules(const lint::LintResult &res)
{
    std::vector<std::string> ids;
    for (const lint::Diagnostic &d : res.diags)
        ids.push_back(d.rule);
    std::sort(ids.begin(), ids.end());
    return ids;
}

const lint::Diagnostic *
findRule(const lint::LintResult &res, const std::string &rule)
{
    for (const lint::Diagnostic &d : res.diags)
        if (d.rule == rule)
            return &d;
    return nullptr;
}

// ---------------------------------------------------------------------
// Seeded-defect corpus: each rule fires with the exact expected set.
// ---------------------------------------------------------------------

TEST(LintCorpus, DomOperandAlsoTripsSsa)
{
    // Operand-dominance defects fire both LINT_DOM_OPERAND (the precise
    // per-use rule) and LINT_SSA (the verifier promotion) by design.
    lint::LintResult res = lintCorpus("dom_operand");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_DOM_OPERAND", "LINT_SSA"}));
    EXPECT_TRUE(res.hasErrors());

    const lint::Diagnostic *d = findRule(res, "LINT_DOM_OPERAND");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Error);
    EXPECT_EQ(d->loc.function, "main");
    EXPECT_EQ(d->loc.block, "join");
    EXPECT_EQ(d->loc.instr, "y");
    EXPECT_EQ(d->loc.line, 13u);
    EXPECT_NE(d->message.find("%x"), std::string::npos);
}

TEST(LintCorpus, Unreachable)
{
    lint::LintResult res = lintCorpus("unreachable");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_UNREACHABLE"}));
    EXPECT_FALSE(res.hasErrors());
    EXPECT_EQ(res.diags[0].severity, lint::Severity::Warning);
    EXPECT_EQ(res.diags[0].loc.block, "island");
    // The dead %z inside the unreachable block must NOT also fire
    // LINT_DEAD_DEF: the unreachable finding owns that block.
}

TEST(LintCorpus, DeadDef)
{
    lint::LintResult res = lintCorpus("dead_def");
    EXPECT_EQ(rules(res), (std::vector<std::string>{"LINT_DEAD_DEF"}));
    EXPECT_FALSE(res.hasErrors());
    EXPECT_EQ(res.diags[0].loc.instr, "unused");
}

TEST(LintCorpus, GlobalOob)
{
    lint::LintResult res = lintCorpus("global_oob");
    EXPECT_EQ(rules(res), (std::vector<std::string>{"LINT_GLOBAL_OOB"}));
    EXPECT_TRUE(res.hasErrors());
    const lint::Diagnostic &d = res.diags[0];
    EXPECT_NE(d.message.find("@buf"), std::string::npos);
    EXPECT_NE(d.message.find("16"), std::string::npos);
}

TEST(LintCorpus, InfiniteLoop)
{
    lint::LintResult res = lintCorpus("infinite");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_INFINITE_LOOP"}));
    // The loop is otherwise canonical, so no shape warning rides along.
    EXPECT_EQ(res.diags[0].loc.block, "spin.hdr");
}

TEST(LintCorpus, Irreducible)
{
    lint::LintResult res = lintCorpus("irreducible");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_IRREDUCIBLE"}));
    EXPECT_NE(res.diags[0].message.find("irreducible"),
              std::string::npos);
}

TEST(LintCorpus, NonCanonicalLoop)
{
    lint::LintResult res = lintCorpus("noncanonical");
    EXPECT_EQ(rules(res),
              (std::vector<std::string>{"LINT_NON_CANONICAL_LOOP"}));
    EXPECT_NE(res.diags[0].message.find("multiple latches"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------

TEST(LintOptions, WarningsAsErrorsPromotes)
{
    lint::LintOptions opts;
    opts.warningsAsErrors = true;
    lint::LintResult res = lintCorpus("dead_def", opts);
    ASSERT_EQ(res.diags.size(), 1u);
    EXPECT_EQ(res.diags[0].severity, lint::Severity::Error);
    EXPECT_TRUE(res.hasErrors());
}

TEST(LintOptions, DisabledRulesSkip)
{
    lint::LintOptions opts;
    opts.disabledRules = {"LINT_DEAD_DEF"};
    lint::LintResult res = lintCorpus("dead_def", opts);
    EXPECT_TRUE(res.diags.empty());
}

TEST(LintOptions, ClassifyOffSuppressesDeps)
{
    lint::LintOptions opts;
    opts.classify = false;
    lint::LintResult res = lintCorpus("dead_def", opts);
    EXPECT_TRUE(res.deps.isNull());
}

// ---------------------------------------------------------------------
// Clean inputs: zero findings on everything we ship.
// ---------------------------------------------------------------------

TEST(LintClean, BundledSuitesHaveZeroFindings)
{
    for (const core::BenchProgram &prog : suites::allPrograms()) {
        auto mod = prog.build();
        lint::LintResult res = lint::lintModule(*mod);
        EXPECT_TRUE(res.diags.empty())
            << prog.suite << "/" << prog.name << ": "
            << (res.diags.empty() ? "" : res.diags[0].str());
    }
}

TEST(LintClean, SampleLirHasZeroFindings)
{
    std::string path = std::string(LP_SOURCE_DIR) + "/examples/sample.lir";
    auto mod = ir::parseModule(readFile(path), interp::stdlibImplFor);
    lint::LintResult res = lint::lintModule(*mod);
    EXPECT_TRUE(res.diags.empty())
        << (res.diags.empty() ? "" : res.diags[0].str());
}

// ---------------------------------------------------------------------
// LCD classifier (lint.deps).
// ---------------------------------------------------------------------

/** All "class" strings across every loop/phi of a deps document. */
std::vector<std::string>
depClasses(const obs::Json &deps)
{
    std::vector<std::string> out;
    const obs::Json &loops = deps.at("loops");
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const obs::Json &phis = loops.at(i).at("phis");
        for (std::size_t j = 0; j < phis.size(); ++j)
            out.push_back(phis.at(j).at("class").asString());
    }
    return out;
}

TEST(LintDeps, SaxpyIsAllComputable)
{
    auto mod = test::buildSaxpy(64);
    obs::Json deps = lint::classifyModule(*mod);
    std::vector<std::string> classes = depClasses(deps);
    ASSERT_FALSE(classes.empty());
    for (const std::string &c : classes)
        EXPECT_EQ(c, lint::kClassComputable);
}

TEST(LintDeps, SumReductionIsClassified)
{
    auto mod = test::buildSumReduction(64);
    std::vector<std::string> classes =
        depClasses(lint::classifyModule(*mod));
    EXPECT_NE(std::find(classes.begin(), classes.end(),
                        lint::kClassReduction),
              classes.end());
}

TEST(LintDeps, PointerChaseIsPredictionCandidate)
{
    auto mod = test::buildPointerChaseShuffled(32);
    std::vector<std::string> classes =
        depClasses(lint::classifyModule(*mod));
    EXPECT_NE(std::find(classes.begin(), classes.end(),
                        lint::kClassPredictionCandidate),
              classes.end());
}

// ---------------------------------------------------------------------
// SARIF emitter.
// ---------------------------------------------------------------------

TEST(LintSarif, CorpusFindingsSurviveTheRoundTrip)
{
    std::vector<lint::LintResult> results;
    for (const char *name :
         {"dom_operand", "unreachable", "dead_def", "global_oob",
          "infinite", "irreducible", "noncanonical"}) {
        lint::LintResult res = lintCorpus(name);
        res.artifact = std::string(name) + ".lir";
        results.push_back(std::move(res));
    }

    std::string text = lint::toSarif(results).dump(2);
    std::string err;
    obs::Json doc = obs::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    EXPECT_EQ(doc.at("version").asString(), "2.1.0");
    const obs::Json &run = doc.at("runs").at(0);
    const obs::Json &driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").asString(), "lp-lint");
    // The rule table covers the 8 static rules plus the 2 oracle rules.
    EXPECT_EQ(driver.at("rules").size(), 10u);

    // 8 findings total: dom_operand contributes 2, the rest 1 each.
    const obs::Json &sarifResults = run.at("results");
    EXPECT_EQ(sarifResults.size(), 8u);
    for (std::size_t i = 0; i < sarifResults.size(); ++i) {
        const obs::Json &r = sarifResults.at(i);
        EXPECT_EQ(r.at("ruleId").asString().rfind("LINT_", 0), 0u);
        EXPECT_FALSE(r.at("message").at("text").asString().empty());
        EXPECT_GE(r.at("locations").size(), 1u);
    }

    // The machine-readable classification rides along as a property.
    EXPECT_TRUE(run.at("properties").contains("lint.deps"));
}

TEST(LintSarif, RuleMetaIncludesOracleRules)
{
    bool diverged = false, missed = false;
    for (const lint::RuleMeta &m : lint::standardRuleMeta()) {
        diverged |= m.id == "LINT_ORACLE_COMPUTABLE_DIVERGED";
        missed |= m.id == "LINT_ORACLE_MISSED_IV";
    }
    EXPECT_TRUE(diverged);
    EXPECT_TRUE(missed);
}

// ---------------------------------------------------------------------
// Consistency oracle.
// ---------------------------------------------------------------------

LPConfig
cfg(const char *flags)
{
    return LPConfig::parse(flags, ExecModel::DoAll);
}

/** First header phi of any loop in @p mod (for synthetic watches). */
const ir::Instruction *
anyPhi(const ir::Module &mod)
{
    for (const auto &fn : mod.functions())
        for (const auto &bb : fn->blocks())
            for (const ir::Instruction *phi : bb->phis())
                return phi;
    return nullptr;
}

TEST(LintOracle, CleanRunHasZeroMismatches)
{
    auto mod = test::buildSaxpy(256);
    Loopapalooza lp(*mod);
    rt::OracleCapture cap;
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"), cap);

    EXPECT_TRUE(rep.oracleRan);
    EXPECT_GT(rep.oraclePhisChecked, 0u);
    EXPECT_EQ(rep.oracleMismatches, 0u);
    for (const lint::Diagnostic &d : lint::checkOracle(cap))
        EXPECT_NE(d.severity, lint::Severity::Error) << d.str();
    // The oracle section appears in the JSON report...
    EXPECT_TRUE(rep.toJson(false).contains("oracle"));
}

TEST(LintOracle, OracleFreeReportsStayOracleFree)
{
    // ...and stays absent from oracle-free runs, so pre-oracle report
    // consumers (checkpoints, aggregation) see byte-identical JSON.
    auto mod = test::buildSaxpy(64);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"));
    EXPECT_FALSE(rep.oracleRan);
    EXPECT_FALSE(rep.toJson(false).contains("oracle"));
}

TEST(LintOracle, RunWithOracleConvenience)
{
    auto mod = test::buildSumReduction(128);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.runWithOracle(cfg("reduc1-dep0-fn0"));
    EXPECT_TRUE(rep.oracleRan);
    EXPECT_EQ(rep.oracleMismatches, 0u);
}

TEST(LintOracle, ForcedFalseClaimIsCaughtEndToEnd)
{
    // Claim the shuffled pointer-chase LCD is SCEV-computable: the
    // finite-difference check over the permuted addresses must break
    // and surface as a LINT_ORACLE_COMPUTABLE_DIVERGED mismatch.
    auto mod = test::buildPointerChaseShuffled(64);
    Loopapalooza lp(*mod);
    rt::OracleCapture cap;
    for (const auto &fp : lp.plan().functionPlans())
        for (const rt::LoopPlan &lplan : fp->loopPlans)
            for (const rt::TrackedPhi &tp : lplan.nonComputable)
                cap.forceClaim(tp.phi);

    // Watch registration is config-independent, so plain dep0 works.
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0"), cap);
    EXPECT_TRUE(rep.oracleRan);
    EXPECT_GT(rep.oracleMismatches, 0u);
    bool found = false;
    for (const rt::OracleFinding &f : rep.oracleFindings) {
        if (f.rule != "LINT_ORACLE_COMPUTABLE_DIVERGED")
            continue;
        found = true;
        EXPECT_EQ(f.severity, std::string("error"));
        EXPECT_FALSE(f.phi.empty());
    }
    EXPECT_TRUE(found);
}

TEST(LintOracle, SyntheticDivergenceIsAnError)
{
    auto mod = test::buildSaxpy(8);
    const ir::Instruction *phi = anyPhi(*mod);
    ASSERT_NE(phi, nullptr);

    rt::OracleCapture cap;
    unsigned w = cap.addWatch({phi, "main.loop", "i", 1, true});
    cap.seal();
    rt::OracleCapture::State st;
    for (std::uint64_t v : {1u, 2u, 4u, 8u, 16u}) // not affine
        rt::OracleCapture::observe(st, 1, v);
    EXPECT_TRUE(st.broken);
    cap.recordInstance(w, st, 1);

    std::vector<lint::Diagnostic> diags = lint::checkOracle(cap);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "LINT_ORACLE_COMPUTABLE_DIVERGED");
    EXPECT_EQ(diags[0].severity, lint::Severity::Error);
}

TEST(LintOracle, SyntheticMissedIvIsANote)
{
    auto mod = test::buildSaxpy(8);
    const ir::Instruction *phi = anyPhi(*mod);
    ASSERT_NE(phi, nullptr);

    // Claimed NON-computable, yet perfectly affine in every instance.
    rt::OracleCapture cap;
    unsigned w = cap.addWatch({phi, "main.loop", "p", 1, false});
    cap.seal();
    rt::OracleCapture::State st;
    for (std::uint64_t v = 2; v < 32; v += 3)
        rt::OracleCapture::observe(st, 1, v);
    EXPECT_FALSE(st.broken);
    cap.recordInstance(w, st, 1);

    std::vector<lint::Diagnostic> diags = lint::checkOracle(cap);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "LINT_ORACLE_MISSED_IV");
    EXPECT_EQ(diags[0].severity, lint::Severity::Note);
}

// ---------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------

TEST(LintTaxonomy, LintErrorCarriesTheLintCode)
{
    ErrorContext ctx;
    ctx.program = "chase";
    LintError e("3 error-level lint finding(s)", ctx);
    EXPECT_EQ(e.code(), ErrorCode::Lint);
    EXPECT_EQ(std::string(e.codeName()), "LP_LINT");
    EXPECT_FALSE(e.transient());
    std::string msg = e.what();
    EXPECT_NE(msg.find("[LP_LINT]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("chase"), std::string::npos) << msg;
}

} // namespace
} // namespace lp

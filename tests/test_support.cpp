/**
 * @file
 * Unit tests for the support library: stats, tables, text, RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace lp {
namespace {

TEST(Stats, GeomeanOfEqualValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Stats, GeomeanKnownValue)
{
    // geomean(1, 4) = 2; geomean(2, 8) = 4.
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanEmptyIsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
    EXPECT_THROW(geomean({-3.0}), FatalError);
}

TEST(Stats, AccumMatchesBatch)
{
    GeomeanAccum acc;
    for (double v : {1.5, 3.0, 7.25, 0.5})
        acc.add(v);
    EXPECT_NEAR(acc.value(), geomean({1.5, 3.0, 7.25, 0.5}), 1e-12);
    EXPECT_EQ(acc.count(), 4u);
}

TEST(Stats, MeanMinMax)
{
    std::vector<double> xs{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(minOf(xs), 1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 3.0);
}

TEST(Text, Strf)
{
    EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strf("%.2f", 1.239), "1.24");
}

TEST(Text, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Text, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567890ULL), "1,234,567,890");
}

TEST(Table, AlignsAndCounts)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "23456"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("| name   | value |"), std::string::npos);
    EXPECT_NE(s.find("| longer | 23456 |"), std::string::npos);
}

TEST(Table, RejectsBadRow)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Error, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    try {
        fatal("message text");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "message text");
    }
}

TEST(Error, FatalIfConditional)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

} // namespace
} // namespace lp

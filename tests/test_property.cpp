/**
 * @file
 * Property-based tests: 32 randomly generated programs are pushed through
 * the entire pipeline, checking the invariants the limit study's algebra
 * must satisfy on EVERY program, not just the curated kernels:
 *
 *  - structural and SSA validity of generated IR;
 *  - deterministic execution and deterministic reports;
 *  - parallel cost never exceeds serial cost (speedup >= 1);
 *  - coverage stays within [0, 1];
 *  - relaxing a constraint never hurts: DOALL <= PDOALL, dep0 <= dep2 <=
 *    dep3, reduc0 <= reduc1, fn0 <= fn1 <= fn2 <= fn3 (under PDOALL);
 *  - single-sync DOACROSS never beats multi-sync HELIX.
 */

#include <gtest/gtest.h>

#include "analysis/ssa_verify.hpp"
#include "core/driver.hpp"
#include "core/configs.hpp"
#include "generator.hpp"
#include "interp/machine.hpp"
#include "ir/verifier.hpp"

namespace lp {
namespace {

using rt::ExecModel;
using rt::LPConfig;

constexpr double kTol = 1e-9;

class RandomProgram : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomProgram, VerifiesStructurallyAndSsa)
{
    auto mod = test::generateRandomProgram(GetParam());
    ir::VerifyResult r = ir::verifyModule(*mod);
    ASSERT_TRUE(r.ok()) << r.message();
    ir::VerifyResult ssa = analysis::verifySSA(*mod);
    ASSERT_TRUE(ssa.ok()) << ssa.message();
}

TEST_P(RandomProgram, DeterministicExecution)
{
    auto m1 = test::generateRandomProgram(GetParam());
    auto m2 = test::generateRandomProgram(GetParam());
    interp::Machine a(*m1), b(*m2);
    EXPECT_EQ(a.run(), b.run());
    EXPECT_EQ(a.cost(), b.cost());
}

TEST_P(RandomProgram, CostAndCoverageInvariants)
{
    auto mod = test::generateRandomProgram(GetParam());
    core::Loopapalooza lp(*mod);
    for (const auto &named : core::paperConfigs()) {
        rt::ProgramReport rep = lp.run(named.config);
        EXPECT_LE(rep.parallelCost, rep.serialCost) << named.label;
        EXPECT_GE(rep.speedup(), 1.0 - kTol) << named.label;
        EXPECT_GE(rep.coverage, 0.0) << named.label;
        EXPECT_LE(rep.coverage, 1.0 + kTol) << named.label;
        for (const auto &lr : rep.loops) {
            EXPECT_LE(lr.parallelCost, lr.adjustedCost)
                << named.label << " " << lr.label;
            EXPECT_LE(lr.adjustedCost, lr.serialCost)
                << named.label << " " << lr.label;
        }
    }
}

TEST_P(RandomProgram, RelaxationMonotonicity)
{
    auto mod = test::generateRandomProgram(GetParam());
    core::Loopapalooza lp(*mod);

    auto speedup = [&](const char *flags, ExecModel model) {
        return lp.run(LPConfig::parse(flags, model)).speedup();
    };

    // DOALL <= PDOALL at identical flags.
    EXPECT_LE(speedup("reduc0-dep0-fn0", ExecModel::DoAll),
              speedup("reduc0-dep0-fn0", ExecModel::PartialDoAll) + kTol);
    EXPECT_LE(speedup("reduc1-dep0-fn2", ExecModel::DoAll),
              speedup("reduc1-dep0-fn2", ExecModel::PartialDoAll) + kTol);

    // dep ladder under PDOALL.
    double d0 = speedup("reduc0-dep0-fn2", ExecModel::PartialDoAll);
    double d2 = speedup("reduc0-dep2-fn2", ExecModel::PartialDoAll);
    double d3 = speedup("reduc0-dep3-fn2", ExecModel::PartialDoAll);
    EXPECT_LE(d0, d2 + kTol);
    EXPECT_LE(d2, d3 + kTol);

    // reduc ladder.
    EXPECT_LE(speedup("reduc0-dep2-fn2", ExecModel::PartialDoAll),
              speedup("reduc1-dep2-fn2", ExecModel::PartialDoAll) + kTol);

    // fn ladder.
    double f0 = speedup("reduc1-dep2-fn0", ExecModel::PartialDoAll);
    double f1 = speedup("reduc1-dep2-fn1", ExecModel::PartialDoAll);
    double f2 = speedup("reduc1-dep2-fn2", ExecModel::PartialDoAll);
    double f3 = speedup("reduc1-dep2-fn3", ExecModel::PartialDoAll);
    EXPECT_LE(f0, f1 + kTol);
    EXPECT_LE(f1, f2 + kTol);
    EXPECT_LE(f2, f3 + kTol);
}

TEST_P(RandomProgram, DoacrossNeverBeatsHelix)
{
    auto mod = test::generateRandomProgram(GetParam());
    core::Loopapalooza lp(*mod);
    LPConfig helix = LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix);
    LPConfig doacross = helix;
    doacross.singleSyncDoacross = true;
    EXPECT_LE(lp.run(doacross).speedup(),
              lp.run(helix).speedup() + kTol);
}

TEST_P(RandomProgram, ReportsAreReproducible)
{
    auto mod = test::generateRandomProgram(GetParam());
    core::Loopapalooza lp(*mod);
    LPConfig cfg = core::bestHelix();
    rt::ProgramReport a = lp.run(cfg);
    rt::ProgramReport b = lp.run(cfg);
    EXPECT_EQ(a.serialCost, b.serialCost);
    EXPECT_EQ(a.parallelCost, b.parallelCost);
    EXPECT_EQ(a.coverage, b.coverage);
    ASSERT_EQ(a.loops.size(), b.loops.size());
    for (std::size_t i = 0; i < a.loops.size(); ++i) {
        EXPECT_EQ(a.loops[i].parallelCost, b.loops[i].parallelCost);
        EXPECT_EQ(a.loops[i].memConflicts, b.loops[i].memConflicts);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range<std::uint64_t>(0, 32));

} // namespace
} // namespace lp

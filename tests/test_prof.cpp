/**
 * @file
 * lp::prof: instrumented locks, the profiling collector, and the
 * profiled-runs-change-nothing guarantee (docs/profiling.md).
 *
 * Shape of the suite:
 *  - TimedMutex: disabled cost model (no stats recorded), uncontended
 *    fast path, forced contention producing wait-ns and the per-thread
 *    lock-wait accumulator CellScope attribution is built on;
 *  - Collector: spec parsing, per-cell JSONL well-formedness and schema
 *    round-trip, per-worker timeline lane validity, epoch attribution
 *    from the interpret/record/replay hot loops;
 *  - Determinism: a profiled sweep's reports are byte-identical to an
 *    unprofiled sweep's, serial and at --jobs 4 (ISSUE 6 acceptance).
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/study.hpp"
#include "exec/pool.hpp"
#include "helpers.hpp"
#include "obs/json.hpp"
#include "prof/collector.hpp"
#include "prof/timed_mutex.hpp"
#include "rt/config.hpp"

namespace lp {
namespace {

/** Profiling off and all evidence dropped before and after each test. */
class ProfSandbox : public ::testing::Test
{
  public:
    static void quiesce()
    {
        prof::Collector::instance().configure("off");
        prof::Collector::instance().reset();
    }

  protected:
    void SetUp() override { quiesce(); }
    void TearDown() override { quiesce(); }
};

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

// ----------------------------------------------------------- TimedMutex

TEST_F(ProfSandbox, DisabledMutexRecordsNothing)
{
    prof::TimedMutex m("test.prof.disabled");
    for (int i = 0; i < 100; ++i) {
        m.lock();
        m.unlock();
    }
    EXPECT_EQ(m.stats().acquisitions(), 0u);
    EXPECT_EQ(m.stats().contended(), 0u);
    EXPECT_EQ(m.stats().waitNs(), 0u);
}

TEST_F(ProfSandbox, UncontendedAcquisitionsCountWithoutWait)
{
    prof::TimedMutex m("test.prof.uncontended");
    prof::Collector::instance().setEnabled(true);
    for (int i = 0; i < 10; ++i) {
        m.lock();
        m.unlock();
    }
    EXPECT_TRUE(m.try_lock());
    m.unlock();
    prof::Collector::instance().setEnabled(false);
    EXPECT_EQ(m.stats().acquisitions(), 11u);
    EXPECT_EQ(m.stats().contended(), 0u);
    EXPECT_EQ(m.stats().waitNs(), 0u);
}

TEST_F(ProfSandbox, ForcedContentionRecordsWaitAndThreadAccumulator)
{
    prof::TimedMutex m("test.prof.contended");
    prof::Collector::instance().setEnabled(true);

    // Hold the lock while a second thread provably blocks on it.
    std::atomic<bool> waiterStarted{false};
    std::uint64_t waiterLockWaitNs = 0;
    m.lock();
    std::thread waiter([&] {
        const std::uint64_t before = prof::threadLockWaitNs();
        waiterStarted.store(true);
        m.lock(); // contended: the main thread holds it
        m.unlock();
        waiterLockWaitNs = prof::threadLockWaitNs() - before;
    });
    while (!waiterStarted.load())
        std::this_thread::yield();
    // The waiter has at most a few instructions between the flag and
    // the lock() call; give it amply long to be parked on the mutex.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    m.unlock();
    waiter.join();
    prof::Collector::instance().setEnabled(false);

    EXPECT_EQ(m.stats().acquisitions(), 2u);
    EXPECT_EQ(m.stats().contended(), 1u);
    EXPECT_GT(m.stats().waitNs(), 0u);
    // The contended wait landed in the waiting thread's accumulator —
    // this is what CellScope diffs to attribute lock-wait to cells.
    EXPECT_EQ(waiterLockWaitNs, m.stats().waitNs());
}

TEST_F(ProfSandbox, ContentionSnapshotRanksSites)
{
    prof::Collector &c = prof::Collector::instance();
    prof::TimedMutex hot("test.prof.rank_hot");
    c.setEnabled(true);
    std::thread t([&] {
        for (int i = 0; i < 200; ++i) {
            hot.lock();
            hot.unlock();
        }
    });
    for (int i = 0; i < 200; ++i) {
        hot.lock();
        hot.unlock();
    }
    t.join();
    c.setEnabled(false);

    obs::Json contention = c.contentionJson();
    EXPECT_EQ(contention.at("total_acquisitions").asU64(),
              hot.stats().acquisitions());
    bool found = false;
    const obs::Json &sites = contention.at("sites");
    std::uint64_t lastWait = UINT64_MAX;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const obs::Json &site = sites.at(i);
        // Sorted most-waited-on first.
        EXPECT_LE(site.at("wait_ns").asU64(), lastWait);
        lastWait = site.at("wait_ns").asU64();
        if (site.at("site").asString() == "test.prof.rank_hot")
            found = true;
    }
    EXPECT_TRUE(found);
}

// ------------------------------------------------------------ Collector

TEST_F(ProfSandbox, ConfigureParsesSpecsAndRejectsUnknownModes)
{
    prof::Collector &c = prof::Collector::instance();

    EXPECT_FALSE(c.configure("perf"));
    EXPECT_EQ(c.mode(), prof::Mode::Off);
    EXPECT_FALSE(prof::profilingOn());

    std::string path = tempPath("lp_prof_cfg.json");
    EXPECT_TRUE(c.configure("json:" + path));
    EXPECT_EQ(c.mode(), prof::Mode::Json);
    EXPECT_EQ(c.outputPath(), path);
    EXPECT_TRUE(prof::profilingOn());

    EXPECT_TRUE(c.configure("chrome:" + path));
    EXPECT_EQ(c.mode(), prof::Mode::Chrome);

    EXPECT_TRUE(c.configure("off"));
    EXPECT_EQ(c.mode(), prof::Mode::Off);
    EXPECT_FALSE(prof::profilingOn());
}

TEST_F(ProfSandbox, CellRecordsRoundTripThroughJsonlAndReport)
{
    prof::Collector &c = prof::Collector::instance();
    const std::string path = tempPath("lp_prof_cells.json");
    ASSERT_TRUE(c.configure("json:" + path));

    c.beginRegion();
    {
        prof::CellScope cell("164.gzip-like", "cint2000",
                             "reduc1-dep1-fn2 helix");
        cell.setInstructions(12345);
        cell.setAttempts(2);
        cell.setStatus("ok");
    }
    {
        prof::CellScope cell("175.vpr-like", "cint2000",
                             "reduc1-dep1-fn2 helix");
        // No setStatus: an unwound scope records as failed.
    }
    c.endRegion();
    EXPECT_EQ(c.cellCount(), 2u);
    ASSERT_TRUE(c.finish()); // writes both outputs, disables profiling

    // The streamed JSONL: one well-formed object per line, schema keys
    // present, values round-tripping.
    std::ifstream jsonl(path + ".cells.jsonl");
    ASSERT_TRUE(jsonl.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(jsonl, line)) {
        std::string err;
        obs::Json rec = obs::Json::parse(line, &err);
        ASSERT_TRUE(err.empty()) << err << " in: " << line;
        for (const char *key :
             {"program", "suite", "config", "worker", "start_ns",
              "wall_ns", "queue_wait_ns", "lock_wait_ns", "instructions",
              "attempts", "status"})
            EXPECT_TRUE(rec.contains(key)) << key;
        ++lines;
    }
    EXPECT_EQ(lines, 2u);

    // The rolled-up profile document agrees with the stream.
    std::ifstream profFile(path);
    ASSERT_TRUE(profFile.good());
    std::stringstream buf;
    buf << profFile.rdbuf();
    std::string err;
    obs::Json doc = obs::Json::parse(buf.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(doc.contains("cells"));
    ASSERT_EQ(doc.at("cells").size(), 2u);
    const obs::Json &first = doc.at("cells").at(0);
    EXPECT_EQ(first.at("program").asString(), "164.gzip-like");
    EXPECT_EQ(first.at("instructions").asU64(), 12345u);
    EXPECT_EQ(first.at("attempts").asU64(), 2u);
    EXPECT_EQ(first.at("status").asString(), "ok");
    EXPECT_EQ(doc.at("cells").at(1).at("status").asString(), "failed");
    ASSERT_TRUE(doc.contains("contention"));
    ASSERT_TRUE(doc.contains("workers"));

    std::remove(path.c_str());
    std::remove((path + ".cells.jsonl").c_str());
}

std::vector<core::BenchProgram>
smallPrograms()
{
    auto mk = [](const char *name, auto builder) {
        core::BenchProgram p;
        p.name = name;
        p.suite = "prof-test";
        p.build = builder;
        return p;
    };
    return {
        mk("saxpy", [] { return test::buildSaxpy(64); }),
        mk("sum", [] { return test::buildSumReduction(64); }),
        mk("chase", [] { return test::buildPointerChase(48); }),
        mk("hist", [] { return test::buildHistogram(128, 8); }),
    };
}

TEST_F(ProfSandbox, WorkerTimelinesHaveValidLanesAndUtilization)
{
    prof::Collector &c = prof::Collector::instance();
    const std::string path = tempPath("lp_prof_lanes.json");
    ASSERT_TRUE(c.configure("json:" + path));

    core::Study study(smallPrograms(), 1);
    rt::LPConfig cfg =
        rt::LPConfig::parse("reduc1-dep1-fn2", rt::ExecModel::Helix);
    c.beginRegion();
    study.runSuite("prof-test", cfg, 4);
    c.endRegion();

    obs::Json workers = c.workersJson();
    EXPECT_GT(workers.at("region_wall_ns").asU64(), 0u);
    const obs::Json &lanes = workers.at("workers");
    ASSERT_GT(lanes.size(), 0u);
    std::set<std::uint64_t> seenLanes;
    std::uint64_t cellsTotal = 0;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const obs::Json &w = lanes.at(i);
        // Each lane appears once and carries internally consistent
        // spans: busy + idle == the region wall it is measured against.
        EXPECT_TRUE(seenLanes.insert(w.at("worker").asU64()).second);
        cellsTotal += w.at("cells").asU64();
        const double util = w.at("utilization").asDouble();
        EXPECT_GE(util, 0.0);
        EXPECT_LE(util, 1.0 + 1e-9);
        EXPECT_EQ(w.at("busy_ns").asU64() + w.at("idle_ns").asU64(),
                  workers.at("region_wall_ns").asU64());
    }
    EXPECT_EQ(cellsTotal, c.cellCount());
    EXPECT_GE(workers.at("load_imbalance").asDouble(), 1.0 - 1e-9);

    // The Chrome view of the same evidence: every cell span sits on its
    // recorded worker's lane.
    obs::Json chrome = c.chromeDocument();
    const obs::Json &events = chrome.at("traceEvents");
    std::size_t cellEvents = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const obs::Json &e = events.at(i);
        if (e.at("ph").asString() != "X")
            continue;
        ++cellEvents;
        EXPECT_TRUE(seenLanes.count(e.at("tid").asU64()))
            << "span on unknown lane";
        EXPECT_GE(e.at("dur").asDouble(), 0.0);
    }
    EXPECT_EQ(cellEvents, c.cellCount());

    quiesce();
    std::remove((path + ".cells.jsonl").c_str());
}

TEST_F(ProfSandbox, QueueWaitIsLaneIdleGapNotRegionOffset)
{
    // Regression: queue-wait used to be "region start -> cell start",
    // which billed a lane's entire busy history to each of its later
    // cells — a 1.6 s region once reported 23 s of queue-wait.  The
    // fixed definition (lane idle gap before the cell) sums to at most
    // the region wall, because one lane's gaps are disjoint.
    prof::Collector &c = prof::Collector::instance();
    c.setEnabled(true);

    c.beginRegion();
    for (int i = 0; i < 50; ++i) {
        prof::CellScope cell("p" + std::to_string(i), "prof-test",
                             "cfg");
        cell.setStatus("ok");
        // Busy time inside the cell: under the old definition each
        // later cell inherited all of it as "queue wait".
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    c.endRegion();
    c.setEnabled(false);

    obs::Json workers = c.workersJson();
    const std::uint64_t regionWall =
        workers.at("region_wall_ns").asU64();
    ASSERT_GT(regionWall, 0u);

    obs::Json cells = c.cellsJson();
    ASSERT_EQ(cells.size(), 50u);
    std::uint64_t totalWait = 0;
    for (std::size_t i = 0; i < cells.size(); ++i)
        totalWait += cells.at(i).at("queue_wait_ns").asU64();
    // The old definition summed to ~125x the region wall here.
    EXPECT_LE(totalWait, regionWall);

    const obs::Json &lanes = workers.at("workers");
    for (std::size_t i = 0; i < lanes.size(); ++i)
        EXPECT_LE(lanes.at(i).at("queue_wait_ns").asU64(), regionWall);
}

TEST_F(ProfSandbox, ParallelSweepQueueWaitStaysWithinRegionWall)
{
    // The same invariant under a real parallel sweep: whatever the
    // worker count, no lane can have waited longer than the region
    // lasted.
    prof::Collector &c = prof::Collector::instance();
    c.setEnabled(true);

    core::Study study(smallPrograms(), 1);
    rt::LPConfig cfg =
        rt::LPConfig::parse("reduc1-dep1-fn2", rt::ExecModel::Helix);
    c.beginRegion();
    for (int round = 0; round < 3; ++round)
        study.runSuite("prof-test", cfg, 4);
    c.endRegion();
    c.setEnabled(false);

    obs::Json workers = c.workersJson();
    const std::uint64_t regionWall =
        workers.at("region_wall_ns").asU64();
    const obs::Json &lanes = workers.at("workers");
    ASSERT_GT(lanes.size(), 0u);
    for (std::size_t i = 0; i < lanes.size(); ++i)
        EXPECT_LE(lanes.at(i).at("queue_wait_ns").asU64(), regionWall)
            << "lane " << lanes.at(i).at("worker").asU64();
}

TEST_F(ProfSandbox, EpochsAttributeInterpretRecordAndReplayTime)
{
    prof::Collector &c = prof::Collector::instance();
    c.setEnabled(true);

    core::Study study(smallPrograms(), 1);
    rt::LPConfig cfg =
        rt::LPConfig::parse("reduc1-dep1-fn2", rt::ExecModel::Helix);
    // runReplay records once (Record epochs) and replays (Replay
    // epochs); plain run interprets (Interp epochs).
    core::Study::SuiteRunOptions replayOpts;
    replayOpts.traceReplay = true;
    study.runSuite("prof-test", cfg, replayOpts);
    core::Study::SuiteRunOptions interpOpts;
    interpOpts.traceReplay = false;
    study.runSuite("prof-test", cfg, interpOpts);
    c.setEnabled(false);

    obs::Json workers = c.workersJson();
    const obs::Json &lanes = workers.at("workers");
    bool sawInterp = false, sawRecord = false, sawReplay = false;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const obs::Json &ep = lanes.at(i).at("epochs");
        sawInterp |= ep.contains("interp");
        sawRecord |= ep.contains("record");
        sawReplay |= ep.contains("replay");
        for (const std::string &kind : ep.keys())
            EXPECT_GT(ep.at(kind).at("instructions").asU64(), 0u);
    }
    EXPECT_TRUE(sawInterp);
    EXPECT_TRUE(sawRecord);
    EXPECT_TRUE(sawReplay);
}

// ---------------------------------------------------------- determinism

/** One sweep fingerprint: every cell report, dumped canonically. */
std::string
sweepFingerprint(unsigned jobs, bool profiled)
{
    if (profiled) {
        EXPECT_TRUE(prof::Collector::instance().configure(
            "json:" + tempPath("lp_prof_identity.json")));
    } else {
        ProfSandbox::quiesce();
    }
    core::Study study(smallPrograms(), jobs);
    std::string out;
    const std::pair<const char *, rt::ExecModel> points[] = {
        {"reduc0-dep0-fn0", rt::ExecModel::DoAll},
        {"reduc1-dep2-fn2", rt::ExecModel::PartialDoAll},
        {"reduc1-dep1-fn2", rt::ExecModel::Helix},
    };
    for (const auto &[flags, model] : points) {
        rt::LPConfig cfg = rt::LPConfig::parse(flags, model);
        for (const rt::ProgramReport &rep :
             study.runSuite("prof-test", cfg, jobs))
            out += rep.toJson(/*withObsSnapshot=*/false).dump();
        out += '\n';
    }
    ProfSandbox::quiesce();
    std::remove((tempPath("lp_prof_identity.json") + ".cells.jsonl")
                    .c_str());
    return out;
}

TEST_F(ProfSandbox, ProfiledSweepReportsAreByteIdentical)
{
    // The acceptance grid: {off, on} x {serial, 4 jobs} all agree.
    const std::string plainSerial = sweepFingerprint(1, false);
    const std::string profiledSerial = sweepFingerprint(1, true);
    const std::string plainParallel = sweepFingerprint(4, false);
    const std::string profiledParallel = sweepFingerprint(4, true);
    ASSERT_FALSE(plainSerial.empty());
    EXPECT_EQ(plainSerial, profiledSerial);
    EXPECT_EQ(plainSerial, plainParallel);
    EXPECT_EQ(plainSerial, profiledParallel);
}

} // namespace
} // namespace lp

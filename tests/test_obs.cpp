/**
 * @file
 * Tests of the lp::obs observability layer: JSON round-trips, metric
 * arithmetic, timer nesting, sink output formats, and LP_LOG filtering.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/timer.hpp"
#include "support/text.hpp" // strf, used by the LP_LOG_* macros

namespace lp::obs {
namespace {

/** RAII: force metrics on and clean up global obs state afterwards. */
class ObsSandbox
{
  public:
    ObsSandbox()
        : savedLevel_(logLevel()), savedMetrics_(metricsOn())
    {
        Registry::instance().resetAll();
        PhaseTree::instance().reset();
        setMetricsEnabled(true);
    }
    ~ObsSandbox()
    {
        Session::instance().attach(nullptr);
        setMetricsEnabled(savedMetrics_);
        setLogLevel(savedLevel_);
        setLogStream(nullptr);
        Registry::instance().resetAll();
        PhaseTree::instance().reset();
    }

  private:
    Level savedLevel_;
    bool savedMetrics_;
};

// ----------------------------------------------------------------- JSON

TEST(Json, DumpAndParseRoundTrip)
{
    Json doc = Json::object();
    doc.set("int", std::int64_t{-42});
    doc.set("big", std::uint64_t{1'234'567'890'123ULL});
    doc.set("dbl", 2.5);
    doc.set("str", "quote \" backslash \\ newline \n tab \t");
    doc.set("flag", true);
    doc.set("nothing", Json());
    Json arr = Json::array();
    arr.push(1).push("two").push(3.0);
    doc.set("arr", std::move(arr));
    Json inner = Json::object();
    inner.set("k", "v");
    doc.set("obj", std::move(inner));

    for (int indent : {-1, 2}) {
        std::string err;
        Json back = Json::parse(doc.dump(indent), &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.at("int").asInt(), -42);
        EXPECT_EQ(back.at("big").asU64(), 1'234'567'890'123ULL);
        EXPECT_DOUBLE_EQ(back.at("dbl").asDouble(), 2.5);
        EXPECT_EQ(back.at("str").asString(),
                  "quote \" backslash \\ newline \n tab \t");
        EXPECT_TRUE(back.at("flag").asBool());
        EXPECT_TRUE(back.at("nothing").isNull());
        EXPECT_EQ(back.at("arr").size(), 3u);
        EXPECT_EQ(back.at("arr").at(1).asString(), "two");
        EXPECT_EQ(back.at("obj").at("k").asString(), "v");
    }
}

TEST(Json, ParseRejectsMalformedInput)
{
    for (const char *bad :
         {"{", "[1,]", "{\"a\":}", "tru", "{\"a\" 1}", "[1 2]", "\"x"}) {
        std::string err;
        Json v = Json::parse(bad, &err);
        EXPECT_FALSE(err.empty()) << "accepted: " << bad;
    }
}

TEST(Json, PreservesKeyInsertionOrder)
{
    Json doc = Json::object();
    doc.set("zebra", 1);
    doc.set("alpha", 2);
    doc.set("zebra", 3); // overwrite keeps the original position
    EXPECT_EQ(doc.dump(), "{\"zebra\":3,\"alpha\":2}");
}

// -------------------------------------------------------------- metrics

TEST(Metrics, CounterArithmetic)
{
    ObsSandbox sandbox;
    Counter &c = Registry::instance().counter("test.ctr");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name yields the same counter.
    EXPECT_EQ(&Registry::instance().counter("test.ctr"), &c);
    Registry::instance().resetAll();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramBuckets)
{
    ObsSandbox sandbox;
    Histogram h({10, 100, 1000});
    for (std::uint64_t v : {0ULL, 10ULL, 11ULL, 100ULL, 5000ULL})
        h.record(v);
    // bucket 0: <=10 (0, 10), bucket 1: <=100 (11, 100),
    // bucket 2: <=1000 (none), overflow: 5000.
    ASSERT_EQ(h.bucketCounts().size(), 4u);
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 2u);
    EXPECT_EQ(h.bucketCounts()[2], 0u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 5121u);
    EXPECT_DOUBLE_EQ(h.mean(), 5121.0 / 5.0);
}

TEST(Metrics, SnapshotIsValidJson)
{
    ObsSandbox sandbox;
    Registry &reg = Registry::instance();
    reg.counter("snap.ctr").add(7);
    reg.gauge("snap.gauge").set(1.5);
    reg.histogram("snap.hist", {1, 2, 4}).record(3);

    std::string err;
    Json back = Json::parse(reg.toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.at("counters").at("snap.ctr").asU64(), 7u);
    EXPECT_DOUBLE_EQ(back.at("gauges").at("snap.gauge").asDouble(), 1.5);
    EXPECT_EQ(back.at("histograms").at("snap.hist").at("count").asU64(),
              1u);
}

// --------------------------------------------------------------- timers

TEST(Timers, NestingBuildsATree)
{
    ObsSandbox sandbox;
    {
        ScopedPhase outer("outer");
        {
            ScopedPhase inner("inner");
            inner.addInstructions(100);
        }
        {
            ScopedPhase inner("inner"); // merges with the node above
        }
        ScopedPhase sibling("sibling");
    }
    {
        ScopedPhase outer("outer"); // second completion of the same node
    }

    const PhaseNode &root = PhaseTree::instance().root();
    ASSERT_EQ(root.children.size(), 1u);
    const PhaseNode &outer = *root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.count, 2u);
    ASSERT_EQ(outer.children.size(), 2u);
    EXPECT_EQ(outer.children[0]->name, "inner");
    EXPECT_EQ(outer.children[0]->count, 2u);
    EXPECT_EQ(outer.children[0]->instructions, 100u);
    EXPECT_EQ(outer.children[1]->name, "sibling");

    std::string err;
    Json json = Json::parse(PhaseTree::instance().toJson().dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(json.at(0).at("name").asString(), "outer");
    EXPECT_EQ(json.at(0).at("children").at(0).at("instructions").asU64(),
              100u);
}

// ---------------------------------------------------------------- sinks

TEST(Sinks, JsonlLinesAreValidJson)
{
    ObsSandbox sandbox;
    std::ostringstream buf;
    {
        auto sink = std::make_unique<JsonlSink>(buf);
        sink->event("log", Json::object().set("msg", "hello"));
        sink->span("interpret", 10.0, 32.5,
                   Json::object().set("instructions", 1234), /*tid=*/0);
        sink->flush();
    }

    std::istringstream lines(buf.str());
    std::string line;
    int n = 0;
    while (std::getline(lines, line)) {
        std::string err;
        Json rec = Json::parse(line, &err);
        ASSERT_TRUE(err.empty()) << err << " in line: " << line;
        ASSERT_TRUE(rec.contains("kind"));
        ++n;
    }
    EXPECT_EQ(n, 2);

    Json second = Json::parse(buf.str().substr(buf.str().find('\n') + 1));
    EXPECT_EQ(second.at("kind").asString(), "phase");
    EXPECT_EQ(second.at("name").asString(), "interpret");
    EXPECT_DOUBLE_EQ(second.at("dur_us").asDouble(), 32.5);
}

TEST(Sinks, ChromeTraceDocumentShape)
{
    ObsSandbox sandbox;
    std::string path = testing::TempDir() + "lp_obs_trace.json";
    {
        ChromeTraceSink sink(path);
        sink.span("interpret", 5.0, 100.0, Json::object(), /*tid=*/0);
        sink.event("metrics", Json::object().set("x", 1));
        sink.flush();
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    Json doc = Json::parse(buf.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events.at(0).at("name").asString(), "interpret");
    EXPECT_EQ(events.at(0).at("ph").asString(), "X");
    EXPECT_DOUBLE_EQ(events.at(0).at("ts").asDouble(), 5.0);
    EXPECT_DOUBLE_EQ(events.at(0).at("dur").asDouble(), 100.0);
    EXPECT_EQ(events.at(1).at("ph").asString(), "i");
}

TEST(Sinks, SessionConfigureParsesSpecs)
{
    ObsSandbox sandbox;
    Session &s = Session::instance();
    EXPECT_FALSE(s.configure("bogus"));
    EXPECT_EQ(s.sink(), nullptr);
    EXPECT_FALSE(s.configure("chrome:"));
    std::string path = testing::TempDir() + "lp_obs_session.json";
    EXPECT_TRUE(s.configure("chrome:" + path));
    EXPECT_NE(s.sink(), nullptr);
    EXPECT_TRUE(traceOn());
    EXPECT_TRUE(metricsOn()); // a trace sink implies metrics
    s.attach(nullptr);
    EXPECT_FALSE(traceOn());
}

TEST(Sinks, ScopedPhaseEmitsTraceSpan)
{
    ObsSandbox sandbox;
    std::string path = testing::TempDir() + "lp_obs_phase_trace.json";
    Session::instance().configure("chrome:" + path);
    {
        ScopedPhase phase("unit-test-phase");
    }
    Session::instance().close(); // flush + final metrics snapshot

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    Json doc = Json::parse(buf.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    bool sawPhase = false;
    bool sawMetrics = false;
    for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
        const Json &e = doc.at("traceEvents").at(i);
        if (e.at("name").asString() == "unit-test-phase")
            sawPhase = true;
        if (e.at("name").asString() == "metrics")
            sawMetrics = true;
    }
    EXPECT_TRUE(sawPhase);
    EXPECT_TRUE(sawMetrics);
}

// -------------------------------------------------------------- logging

TEST(Log, LevelParsingAndNames)
{
    EXPECT_EQ(parseLevel("off"), Level::Off);
    EXPECT_EQ(parseLevel("error"), Level::Error);
    EXPECT_EQ(parseLevel("info"), Level::Info);
    EXPECT_EQ(parseLevel("debug"), Level::Debug);
    EXPECT_EQ(parseLevel("nonsense"), Level::Off);
    EXPECT_STREQ(levelName(Level::Debug), "debug");
}

TEST(Log, LevelFiltersMessages)
{
    ObsSandbox sandbox;
    std::ostringstream captured;
    setLogStream(&captured);

    setLogLevel(Level::Info);
    LP_LOG_ERROR("e1");
    LP_LOG_INFO("i1");
    LP_LOG_DEBUG("d1"); // suppressed
    setLogLevel(Level::Off);
    LP_LOG_ERROR("e2"); // suppressed
    logMessage(Level::Error, "forced", /*force=*/true);

    std::string out = captured.str();
    EXPECT_NE(out.find("[lp:error] e1"), std::string::npos);
    EXPECT_NE(out.find("[lp:info] i1"), std::string::npos);
    EXPECT_EQ(out.find("d1"), std::string::npos);
    EXPECT_EQ(out.find("e2"), std::string::npos);
    EXPECT_NE(out.find("forced"), std::string::npos);
}

TEST(Log, MessagesMirrorIntoJsonlSink)
{
    ObsSandbox sandbox;
    std::ostringstream text;
    setLogStream(&text);
    std::string path = testing::TempDir() + "lp_obs_log.jsonl";
    Session::instance().configure("jsonl:" + path);

    setLogLevel(Level::Info);
    LP_LOG_INFO("structured %d", 7);
    Session::instance().close();

    std::ifstream in(path);
    std::string line;
    bool found = false;
    while (std::getline(in, line)) {
        std::string err;
        Json rec = Json::parse(line, &err);
        ASSERT_TRUE(err.empty()) << err;
        if (rec.at("kind").asString() == "log" &&
            rec.at("data").at("msg").asString() == "structured 7")
            found = true;
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace lp::obs

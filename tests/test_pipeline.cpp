/**
 * @file
 * End-to-end tests of the limit-study pipeline: known programs, known
 * configurations, assert the speedups and classifications the paper's
 * model requires.
 */

#include <gtest/gtest.h>

#include "core/configs.hpp"
#include "core/driver.hpp"
#include "helpers.hpp"
#include "support/error.hpp"

namespace lp {
namespace {

using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;
using rt::ProgramReport;
using rt::SerialReason;

LPConfig
cfg(const char *flags, ExecModel model)
{
    return LPConfig::parse(flags, model);
}

const rt::LoopReport *
findLoop(const ProgramReport &rep, const std::string &substr)
{
    for (const auto &lr : rep.loops)
        if (lr.label.find(substr) != std::string::npos)
            return &lr;
    return nullptr;
}

TEST(Pipeline, SaxpyIsDoallParallel)
{
    auto mod = test::buildSaxpy(2000);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep0-fn0", ExecModel::DoAll));

    // All three loops are parallel with no conflicts: the program is
    // almost entirely loop time, so speedup is large.
    EXPECT_GT(rep.speedup(), 100.0);
    EXPECT_GT(rep.coverage, 0.95);
    for (const auto &lr : rep.loops) {
        EXPECT_EQ(lr.staticReason, SerialReason::None) << lr.label;
        EXPECT_EQ(lr.memConflicts, 0u) << lr.label;
        EXPECT_EQ(lr.serializedInstances, 0u) << lr.label;
    }
}

TEST(Pipeline, ParallelCostNeverExceedsSerial)
{
    for (const auto &named : core::paperConfigs()) {
        auto mod = test::buildHistogram(500, 64);
        Loopapalooza lp(*mod);
        ProgramReport rep = lp.run(named.config);
        EXPECT_LE(rep.parallelCost, rep.serialCost) << named.label;
        EXPECT_GE(rep.speedup(), 1.0) << named.label;
    }
}

TEST(Pipeline, ReductionGatedByReducFlag)
{
    auto mod = test::buildSumReduction(2000);
    Loopapalooza lp(*mod);

    ProgramReport r0 = lp.run(cfg("reduc0-dep0-fn0", ExecModel::DoAll));
    ProgramReport r1 = lp.run(cfg("reduc1-dep0-fn0", ExecModel::DoAll));

    const rt::LoopReport *sum0 = findLoop(r0, "j.hdr");
    const rt::LoopReport *sum1 = findLoop(r1, "j.hdr");
    ASSERT_NE(sum0, nullptr);
    ASSERT_NE(sum1, nullptr);
    // reduc0: the accumulator is a register LCD -> statically serial.
    EXPECT_EQ(sum0->staticReason, SerialReason::RegisterLcd);
    // reduc1: decoupled -> parallel.
    EXPECT_EQ(sum1->staticReason, SerialReason::None);
    EXPECT_GT(r1.speedup(), 2.0 * r0.speedup());
}

TEST(Pipeline, CensusClassifiesPhis)
{
    auto mod = test::buildSumReduction(500);
    Loopapalooza lp(*mod);
    ProgramReport rep =
        lp.run(cfg("reduc1-dep0-fn0", ExecModel::PartialDoAll));
    EXPECT_EQ(rep.census.staticLoops, 2u);
    EXPECT_EQ(rep.census.canonicalLoops, 2u);
    EXPECT_EQ(rep.census.computableIvs, 2u); // the two IVs
    EXPECT_EQ(rep.census.reductions, 1u);    // acc
    EXPECT_EQ(rep.census.loopsWithCalls, 0u);
}

TEST(Pipeline, PdoallMatchesDoallWithoutConflicts)
{
    auto mod = test::buildSaxpy(1000);
    Loopapalooza lp(*mod);
    ProgramReport doall =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::DoAll));
    ProgramReport pdoall =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    // Identical configurations: same costs for a conflict-free program
    // (the paper observes exactly this equality).
    EXPECT_EQ(doall.parallelCost, pdoall.parallelCost);
}

TEST(Pipeline, PredictablePointerChaseGatedByDepFlag)
{
    auto mod = test::buildPointerChase(2000);
    Loopapalooza lp(*mod);

    // dep0: the carried pointer forbids parallelization.
    ProgramReport d0 =
        lp.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    const rt::LoopReport *walk0 = findLoop(d0, "walk");
    ASSERT_NE(walk0, nullptr);
    EXPECT_EQ(walk0->staticReason, SerialReason::RegisterLcd);

    // dep2: the pointer advances with a constant stride -> predictable
    // -> the walk parallelizes.
    ProgramReport d2 =
        lp.run(cfg("reduc1-dep2-fn0", ExecModel::PartialDoAll));
    const rt::LoopReport *walk2 = findLoop(d2, "walk");
    ASSERT_NE(walk2, nullptr);
    EXPECT_EQ(walk2->staticReason, SerialReason::None);
    EXPECT_GT(walk2->speedup(), 20.0);
    EXPECT_GT(d2.speedup(), 1.5 * d0.speedup());

    // dep3 can only be better or equal.
    ProgramReport d3 =
        lp.run(cfg("reduc1-dep3-fn0", ExecModel::PartialDoAll));
    EXPECT_GE(d3.speedup(), 0.99 * d2.speedup());
}

TEST(Pipeline, ShuffledChaseIsLessPredictable)
{
    auto seq = test::buildPointerChase(2048);
    auto shuf = test::buildPointerChaseShuffled(2048);
    Loopapalooza lpSeq(*seq), lpShuf(*shuf);
    LPConfig c = cfg("reduc1-dep2-fn0", ExecModel::PartialDoAll);
    ProgramReport rSeq = lpSeq.run(c);
    ProgramReport rShuf = lpShuf.run(c);

    const rt::LoopReport *wSeq = findLoop(rSeq, "walk");
    const rt::LoopReport *wShuf = findLoop(rShuf, "walk");
    ASSERT_NE(wSeq, nullptr);
    ASSERT_NE(wShuf, nullptr);
    // The shuffled walk mispredicts materially more often.
    double missSeq = static_cast<double>(wSeq->regMispredicts) /
                     std::max<std::uint64_t>(wSeq->regPredictions, 1);
    double missShuf = static_cast<double>(wShuf->regMispredicts) /
                      std::max<std::uint64_t>(wShuf->regPredictions, 1);
    EXPECT_LT(missSeq, 0.05);
    EXPECT_GT(missShuf, 5 * missSeq + 0.05);
    EXPECT_GT(rSeq.speedup(), rShuf.speedup());
}

TEST(Pipeline, HelixSynchronizesPointerChase)
{
    auto mod = test::buildPointerChase(2000);
    Loopapalooza lp(*mod);
    // dep1 HELIX: the carried pointer is lowered to memory and served by
    // synchronization; the next-pointer loads early, so delta is small
    // and the walk parallelizes without any speculation.
    ProgramReport rep = lp.run(cfg("reduc1-dep1-fn2", ExecModel::Helix));
    const rt::LoopReport *walk = findLoop(rep, "walk");
    ASSERT_NE(walk, nullptr);
    EXPECT_EQ(walk->staticReason, SerialReason::None);
    EXPECT_GT(walk->speedup(), 2.0);
    EXPECT_EQ(walk->serializedInstances, 0u);

    // dep0 HELIX cannot pass register values between iterations.
    ProgramReport rep0 = lp.run(cfg("reduc1-dep0-fn2", ExecModel::Helix));
    const rt::LoopReport *walk0 = findLoop(rep0, "walk");
    ASSERT_NE(walk0, nullptr);
    EXPECT_EQ(walk0->staticReason, SerialReason::RegisterLcd);
}

TEST(Pipeline, HistogramConflictDensityDrivesPdoall)
{
    // Sparse histogram: few collisions -> PDOALL keeps most parallelism.
    auto sparse = test::buildHistogram(400, 4096);
    Loopapalooza lpSparse(*sparse);
    ProgramReport rs =
        lpSparse.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    const rt::LoopReport *ls = findLoop(rs, "i.hdr");
    ASSERT_NE(ls, nullptr);
    EXPECT_EQ(ls->staticReason, SerialReason::None);
    EXPECT_GT(ls->speedup(), 3.0);

    // Dense histogram: nearly every iteration conflicts -> the 80% rule
    // serializes the loop.
    auto dense = test::buildHistogram(400, 2);
    Loopapalooza lpDense(*dense);
    ProgramReport rd =
        lpDense.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    const rt::LoopReport *ld = findLoop(rd, "i.hdr");
    ASSERT_NE(ld, nullptr);
    EXPECT_GT(ld->serializedInstances, 0u);
    EXPECT_LT(rd.speedup(), 1.3);

    // HELIX handles the dense case through synchronization and does
    // better than PDOALL there.
    ProgramReport rh =
        lpDense.run(cfg("reduc0-dep0-fn2", ExecModel::Helix));
    EXPECT_GT(rh.speedup(), rd.speedup());
}

TEST(Pipeline, FnFlagsGateCalls)
{
    using test::CalleeKind;

    // Pure helper: serial under fn0, parallel from fn1 on.
    auto pure = test::buildLoopWithCalls(600, CalleeKind::Pure);
    Loopapalooza lpPure(*pure);
    ProgramReport f0 =
        lpPure.run(cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll));
    ProgramReport f1 =
        lpPure.run(cfg("reduc0-dep0-fn1", ExecModel::PartialDoAll));
    const rt::LoopReport *l0 = findLoop(f0, "main.i.hdr");
    const rt::LoopReport *l1 = findLoop(f1, "main.i.hdr");
    ASSERT_NE(l0, nullptr);
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l0->staticReason, SerialReason::CallPolicy);
    EXPECT_EQ(l1->staticReason, SerialReason::None);
    EXPECT_GT(f1.speedup(), f0.speedup());

    // Helper that writes memory: fn1 rejects, fn2 instruments it.
    auto instr = test::buildLoopWithCalls(600, CalleeKind::Instrumented);
    Loopapalooza lpInstr(*instr);
    ProgramReport g1 =
        lpInstr.run(cfg("reduc0-dep0-fn1", ExecModel::PartialDoAll));
    ProgramReport g2 =
        lpInstr.run(cfg("reduc0-dep0-fn2", ExecModel::PartialDoAll));
    EXPECT_EQ(findLoop(g1, "main.i.hdr")->staticReason,
              SerialReason::CallPolicy);
    EXPECT_EQ(findLoop(g2, "main.i.hdr")->staticReason,
              SerialReason::None);
    // The helper writes disjoint out[] slots: no conflicts, full win.
    EXPECT_EQ(findLoop(g2, "main.i.hdr")->memConflicts, 0u);
    EXPECT_GT(g2.speedup(), g1.speedup());

    // Helper calling rand(): fn2 rejects, fn3 admits.
    auto unsafe = test::buildLoopWithCalls(600, CalleeKind::UnsafeExt);
    Loopapalooza lpUnsafe(*unsafe);
    ProgramReport h2 =
        lpUnsafe.run(cfg("reduc0-dep0-fn2", ExecModel::PartialDoAll));
    ProgramReport h3 =
        lpUnsafe.run(cfg("reduc0-dep0-fn3", ExecModel::PartialDoAll));
    EXPECT_EQ(findLoop(h2, "main.i.hdr")->staticReason,
              SerialReason::CallPolicy);
    EXPECT_EQ(findLoop(h3, "main.i.hdr")->staticReason,
              SerialReason::None);
    EXPECT_GT(h3.speedup(), h2.speedup());
}

TEST(Pipeline, DoallRejectsDepRelaxations)
{
    EXPECT_THROW(cfg("reduc0-dep2-fn0", ExecModel::DoAll), FatalError);
    EXPECT_THROW(cfg("reduc0-dep1-fn0", ExecModel::DoAll), FatalError);
    EXPECT_NO_THROW(cfg("reduc1-dep0-fn3", ExecModel::DoAll));
}

TEST(Pipeline, ReportsAreDeterministic)
{
    auto m1 = test::buildHistogram(300, 32);
    auto m2 = test::buildHistogram(300, 32);
    Loopapalooza a(*m1), b(*m2);
    LPConfig c = cfg("reduc0-dep0-fn0", ExecModel::PartialDoAll);
    ProgramReport ra = a.run(c);
    ProgramReport rb = b.run(c);
    EXPECT_EQ(ra.serialCost, rb.serialCost);
    EXPECT_EQ(ra.parallelCost, rb.parallelCost);
    EXPECT_EQ(ra.coverage, rb.coverage);
}

TEST(Pipeline, RerunOnSameDriverIsIndependent)
{
    auto mod = test::buildSaxpy(500);
    Loopapalooza lp(*mod);
    LPConfig c = cfg("reduc0-dep0-fn0", ExecModel::DoAll);
    ProgramReport r1 = lp.run(c);
    ProgramReport r2 = lp.run(c);
    EXPECT_EQ(r1.serialCost, r2.serialCost);
    EXPECT_EQ(r1.parallelCost, r2.parallelCost);
}

TEST(Pipeline, ReportJsonRoundTripsCensusAndPerLoopNumbers)
{
    auto mod = test::buildSumReduction(2000);
    Loopapalooza lp(*mod);
    ProgramReport rep = lp.run(cfg("reduc0-dep2-fn0", ExecModel::Helix));

    std::string err;
    obs::Json json = obs::Json::parse(rep.toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;

    // Top-level numbers match the in-memory report exactly.
    EXPECT_EQ(json.at("program").asString(), rep.program);
    EXPECT_EQ(json.at("config").at("label").asString(),
              rep.config.str());
    EXPECT_EQ(json.at("serial_cost").asU64(), rep.serialCost);
    EXPECT_EQ(json.at("parallel_cost").asU64(), rep.parallelCost);
    EXPECT_DOUBLE_EQ(json.at("speedup").asDouble(), rep.speedup());
    EXPECT_DOUBLE_EQ(json.at("coverage").asDouble(), rep.coverage);

    // Census round-trips field by field.
    const obs::Json &census = json.at("census");
    EXPECT_EQ(census.at("static_loops").asU64(),
              rep.census.staticLoops);
    EXPECT_EQ(census.at("canonical_loops").asU64(),
              rep.census.canonicalLoops);
    EXPECT_EQ(census.at("computable_ivs").asU64(),
              rep.census.computableIvs);
    EXPECT_EQ(census.at("reductions").asU64(), rep.census.reductions);
    EXPECT_EQ(census.at("predictable_reg_lcds").asU64(),
              rep.census.predictableRegLcds);
    EXPECT_EQ(census.at("unpredictable_reg_lcds").asU64(),
              rep.census.unpredictableRegLcds);
    EXPECT_EQ(census.at("loops_with_calls").asU64(),
              rep.census.loopsWithCalls);

    // Per-loop reports, in the same order with the same numbers.
    ASSERT_EQ(json.at("loops").size(), rep.loops.size());
    for (std::size_t i = 0; i < rep.loops.size(); ++i) {
        const obs::Json &l = json.at("loops").at(i);
        const rt::LoopReport &lr = rep.loops[i];
        EXPECT_EQ(l.at("label").asString(), lr.label);
        EXPECT_EQ(l.at("depth").asU64(), lr.depth);
        EXPECT_EQ(l.at("instances").asU64(), lr.instances);
        EXPECT_EQ(l.at("iterations").asU64(), lr.iterations);
        EXPECT_EQ(l.at("serial_cost").asU64(), lr.serialCost);
        EXPECT_EQ(l.at("parallel_cost").asU64(), lr.parallelCost);
        EXPECT_EQ(l.at("mem_conflicts").asU64(), lr.memConflicts);
        EXPECT_DOUBLE_EQ(l.at("speedup").asDouble(), lr.speedup());
    }

    // The default export carries the obs snapshot sections.
    EXPECT_TRUE(json.contains("metrics"));
    EXPECT_TRUE(json.contains("phases"));
    EXPECT_FALSE(rep.toJson(/*withObsSnapshot=*/false)
                     .contains("metrics"));
}

} // namespace
} // namespace lp

/**
 * @file
 * Tests for batched multi-cell trace replay (src/trace/batch.* +
 * src/rt/batch.cpp + the core front ends).  The load-bearing property:
 * replaying one trace for N configurations in a single SoA pass
 * produces reports *byte-identical* — as serialized JSON — to replaying
 * (and hence interpreting) each configuration on its own, for every
 * program shape, every model, every ablation axis, and every lane
 * count including the 64-lane chunk boundary.  Also covered: the
 * IoError taxonomy (truncated and foreign traces fail a batch exactly
 * like a single cell), and the sweep driver's batch path agreeing with
 * --no-batch byte for byte.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/configs.hpp"
#include "core/driver.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"
#include "fuzz/generator.hpp"
#include "guard/budget.hpp"
#include "helpers.hpp"
#include "rt/replay.hpp"
#include "support/error.hpp"
#include "trace/batch.hpp"
#include "trace/format.hpp"
#include "trace/index.hpp"

namespace lp {
namespace {

using core::Loopapalooza;
using rt::ExecModel;
using rt::LPConfig;

class BatchTest : public ::testing::Test
{
  protected:
    void SetUp() override { guard::clearBudgetOverride(); }
    void TearDown() override { guard::clearBudgetOverride(); }
};

/** Every fixture shape the trace tests exercise, plus the shuffled
 *  chase (unpredictable carried value — the predictor-heavy case). */
std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>>
allShapes()
{
    std::vector<std::pair<std::string, std::unique_ptr<ir::Module>>> out;
    out.emplace_back("saxpy", test::buildSaxpy(64));
    out.emplace_back("sum", test::buildSumReduction(64));
    out.emplace_back("chase", test::buildPointerChase(48));
    out.emplace_back("chase-shuffled", test::buildPointerChaseShuffled(64));
    out.emplace_back("hist", test::buildHistogram(64, 8));
    out.emplace_back("calls",
                     test::buildLoopWithCalls(32,
                                              test::CalleeKind::Pure));
    out.emplace_back(
        "calls-inst",
        test::buildLoopWithCalls(32, test::CalleeKind::Instrumented));
    return out;
}

/** The full paper grid plus single-sync HELIX variants — every model,
 *  every dep/reduc/fn axis, both DOACROSS synchronization modes. */
std::vector<LPConfig>
fullGrid()
{
    std::vector<LPConfig> grid;
    for (const core::NamedConfig &named : core::paperConfigs())
        grid.push_back(named.config);
    LPConfig ss = LPConfig::parse("reduc0-dep1-fn2", ExecModel::Helix);
    ss.singleSyncDoacross = true;
    grid.push_back(ss);
    ss = LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix);
    ss.singleSyncDoacross = true;
    grid.push_back(ss);
    grid.push_back(LPConfig::parse("reduc0-dep2-fn2", ExecModel::Helix));
    grid.push_back(
        LPConfig::parse("reduc1-dep3-fn3", ExecModel::PartialDoAll));
    return grid;
}

std::string
dump(const rt::ProgramReport &rep)
{
    return rep.toJson(/*withObsSnapshot=*/false).dump(2);
}

// --------------------------------------- batched == per-cell == interp

TEST_F(BatchTest, BatchedReplayIsByteIdenticalAcrossShapesAndGrid)
{
    const std::vector<LPConfig> grid = fullGrid();
    for (auto &[name, mod] : allShapes()) {
        Loopapalooza lp(*mod);
        std::vector<rt::ProgramReport> batched =
            lp.runReplayBatched(grid);
        ASSERT_EQ(batched.size(), grid.size()) << name;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            EXPECT_EQ(dump(batched[i]), dump(lp.runReplay(grid[i])))
                << name << " lane " << i << " under " << grid[i].str();
            EXPECT_EQ(dump(batched[i]), dump(lp.run(grid[i])))
                << name << " lane " << i << " vs interpret under "
                << grid[i].str();
        }
    }
}

TEST_F(BatchTest, BatchedReplayMatchesOnRandomPrograms)
{
    const std::vector<LPConfig> grid = fullGrid();
    for (std::uint64_t seed : {1u, 7u, 23u, 51u, 94u}) {
        auto mod = fuzz::generateProgram(seed);
        Loopapalooza lp(*mod);
        std::vector<rt::ProgramReport> batched =
            lp.runReplayBatched(grid);
        ASSERT_EQ(batched.size(), grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i)
            EXPECT_EQ(dump(batched[i]), dump(lp.runReplay(grid[i])))
                << "seed " << seed << " lane " << i << " under "
                << grid[i].str();
    }
}

TEST_F(BatchTest, SingleLaneBatchMatchesPerCell)
{
    auto mod = test::buildHistogram(64, 8);
    Loopapalooza lp(*mod);
    const LPConfig cfg =
        LPConfig::parse("reduc1-dep1-fn2", ExecModel::Helix);
    std::vector<rt::ProgramReport> batched = lp.runReplayBatched({cfg});
    ASSERT_EQ(batched.size(), 1u);
    EXPECT_EQ(dump(batched[0]), dump(lp.runReplay(cfg)));
}

TEST_F(BatchTest, ChunkBoundaryAt64LanesIsSeamless)
{
    // 5 x 18 = 90 lanes: the second chunk starts mid-repetition, so any
    // cross-chunk state leak (shared predictor, shadow pool, epoch
    // carry-over) would break a lane on one side of the boundary.
    auto mod = test::buildPointerChaseShuffled(64);
    Loopapalooza lp(*mod);
    const std::vector<LPConfig> grid = fullGrid();
    std::vector<LPConfig> many;
    for (int rep = 0; rep < 5; ++rep)
        many.insert(many.end(), grid.begin(), grid.end());
    ASSERT_GT(many.size(), 64u);

    std::vector<rt::ProgramReport> batched = lp.runReplayBatched(many);
    ASSERT_EQ(batched.size(), many.size());
    std::vector<std::string> percell;
    for (const LPConfig &cfg : grid)
        percell.push_back(dump(lp.runReplay(cfg)));
    for (std::size_t i = 0; i < many.size(); ++i)
        EXPECT_EQ(dump(batched[i]), percell[i % grid.size()])
            << "lane " << i;
}

TEST_F(BatchTest, EmptyConfigListYieldsNoReports)
{
    auto mod = test::buildSaxpy(16);
    Loopapalooza lp(*mod);
    EXPECT_TRUE(lp.runReplayBatched({}).empty());
}

// ------------------------------------------------------ error taxonomy

TEST_F(BatchTest, BatchRejectsTruncatedTraces)
{
    guard::RunBudget b = guard::defaultBudget();
    b.maxTraceBytes = 64;
    guard::setBudgetOverride(b);

    auto mod = test::buildSaxpy(64);
    Loopapalooza lp(*mod);
    ASSERT_TRUE(lp.trace().truncated);
    try {
        lp.runReplayBatched(fullGrid());
        FAIL() << "batch-replaying a truncated trace must throw";
    }
    catch (const IoError &e) {
        EXPECT_STREQ(e.codeName(), "LP_IO");
    }
}

TEST_F(BatchTest, BatchRejectsAForeignTrace)
{
    auto saxpy = test::buildSaxpy(32);
    auto sum = test::buildSumReduction(32);
    Loopapalooza lpa(*saxpy);
    Loopapalooza lpb(*sum);
    EXPECT_THROW(rt::replayLimitStudyBatched(lpb.plan(), lpb.traceIndex(),
                                             lpa.trace(), fullGrid(),
                                             "mismatch"),
                 IoError);
}

// -------------------------------------------------- dispatch table shape

TEST_F(BatchTest, DispatchTableCoversTheWholeModule)
{
    auto mod = test::buildHistogram(64, 8);
    Loopapalooza lp(*mod);
    const trace::BatchDispatchTable &table = lp.dispatchTable();
    EXPECT_EQ(table.functions.size(), lp.traceIndex().numFunctions());
    EXPECT_EQ(table.blocks.size(), lp.traceIndex().numBlocks());
    std::size_t instrs = 0;
    for (const auto &bi : table.blocks) {
        ASSERT_NE(bi.bb, nullptr);
        EXPECT_EQ(bi.size, bi.bb->instructions().size());
        instrs += bi.size;
    }
    EXPECT_EQ(table.instrs.size(), instrs);
    EXPECT_EQ(table.callCost.size(), instrs);
}

// --------------------------------------------- sweep-level batch path

TEST_F(BatchTest, SweepBatchPathMatchesNoBatchByteForByte)
{
    auto sweepDoc = [&](bool batch) {
        std::vector<core::BenchProgram> progs;
        progs.push_back(
            {"saxpy", "unit", [] { return test::buildSaxpy(32); }});
        progs.push_back(
            {"hist", "unit", [] { return test::buildHistogram(48, 8); }});
        progs.push_back({"chase", "unit",
                         [] { return test::buildPointerChase(32); }});
        core::SweepRequest req;
        req.suite = "unit";
        req.wantJson = true;
        req.batchReplay = batch;
        core::SweepResult res = core::runSweep(progs, req);
        EXPECT_EQ(res.exitCode, 0);
        EXPECT_TRUE(res.hasDocument);
        return res.document.dump(2);
    };
    EXPECT_EQ(sweepDoc(true), sweepDoc(false));
}

} // namespace
} // namespace lp
